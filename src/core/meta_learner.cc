#include "core/meta_learner.h"

#include <algorithm>

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/simd_kernels.h"

namespace lte::core {
namespace {

std::vector<int64_t> LayerSizes(int64_t in, const std::vector<int64_t>& hidden,
                                int64_t out) {
  std::vector<int64_t> sizes = {in};
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

}  // namespace

MetaLearner::MetaLearner(MetaLearnerOptions options, Rng* rng)
    : options_(options) {
  LTE_CHECK_GT(options_.uis_feature_dim, 0);
  LTE_CHECK_MSG(options_.tuple_feature_dim > 0,
                "tuple_feature_dim must be set to the encoded tuple width");
  LTE_CHECK_GT(options_.embedding_size, 0);
  const int64_t ne = options_.embedding_size;
  phi_r_ = nn::Mlp(LayerSizes(options_.uis_feature_dim, options_.uis_hidden, ne),
                   rng);
  phi_tau_ = nn::Mlp(
      LayerSizes(options_.tuple_feature_dim, options_.tuple_hidden, ne), rng);
  const int64_t clf_in = options_.use_memory ? ne : 2 * ne;
  phi_clf_ = nn::Mlp(LayerSizes(clf_in, options_.clf_hidden, 1), rng);

  if (options_.use_memory) {
    LTE_CHECK_GT(options_.num_memory_modes, 0);
    const int64_t m = options_.num_memory_modes;
    // Random initialization of the memories (paper Section VI-B). M_vR rows
    // act as mode prototypes for the attention; M_R stores parameter-shaped
    // bias rows (small, since θ_R = φ_R − σ·ω_R should start near φ_R); each
    // M_CP mode starts as a random projection of the concatenated embedding.
    memory_vr_ = nn::Matrix(m, options_.uis_feature_dim);
    memory_vr_.InitGaussian(rng, 0.1);
    memory_r_ = nn::Matrix(m, phi_r_.ParameterCount());
    memory_r_.InitGaussian(rng, 0.01);
    memory_cp_.clear();
    for (int64_t r = 0; r < m; ++r) {
      nn::Matrix cp(ne, 2 * ne);
      cp.InitGaussian(rng, 1.0 / std::sqrt(static_cast<double>(2 * ne)));
      memory_cp_.push_back(std::move(cp));
    }
  }
}

std::vector<double> MetaLearner::Attention(
    const std::vector<double>& uis_feature) const {
  if (!options_.use_memory) return {};
  LTE_CHECK_EQ(static_cast<int64_t>(uis_feature.size()),
               options_.uis_feature_dim);
  std::vector<double> a(static_cast<size_t>(options_.num_memory_modes));
  for (int64_t r = 0; r < options_.num_memory_modes; ++r) {
    a[static_cast<size_t>(r)] =
        CosineSimilarity(uis_feature, memory_vr_.Row(r));
  }
  SoftmaxInPlace(&a);
  return a;
}

TaskModel MetaLearner::CreateTaskModel(
    const std::vector<double>& uis_feature) const {
  LTE_CHECK_EQ(static_cast<int64_t>(uis_feature.size()),
               options_.uis_feature_dim);
  TaskModel tm;
  tm.use_memory_ = options_.use_memory;
  tm.uis_feature_ = uis_feature;
  tm.attention_ = Attention(uis_feature);

  // θ_τ ⇐ φ_τ, θ_clf ⇐ φ_clf (Eq. 11); copies carry stale gradient
  // accumulators, so clear them.
  tm.f_r_ = phi_r_;
  tm.f_tau_ = phi_tau_;
  tm.f_clf_ = phi_clf_;

  if (options_.use_memory) {
    // θ_R ⇐ φ_R − σ·ω_R with ω_R = a_R^T M_R (Eq. 6, 8).
    std::vector<double> params = phi_r_.GetParameters();
    for (int64_t r = 0; r < options_.num_memory_modes; ++r) {
      const double ar = tm.attention_[static_cast<size_t>(r)];
      const std::vector<double> row = memory_r_.Row(r);
      for (size_t i = 0; i < params.size(); ++i) {
        params[i] -= options_.sigma * ar * row[i];
      }
    }
    tm.f_r_.SetParameters(params);

    // M_cp ⇐ a_R^T M_CP (Eq. 10).
    const int64_t ne = options_.embedding_size;
    tm.m_cp_ = nn::Matrix(ne, 2 * ne);
    for (int64_t r = 0; r < options_.num_memory_modes; ++r) {
      tm.m_cp_.AddScaled(memory_cp_[static_cast<size_t>(r)],
                         tm.attention_[static_cast<size_t>(r)]);
    }
    tm.grad_m_cp_ = nn::Matrix(ne, 2 * ne);
  }

  tm.ZeroGrad();
  tm.support_grad_r_.assign(
      static_cast<size_t>(tm.f_r_.ParameterCount()), 0.0);
  return tm;
}

void MetaLearner::UpdateMemories(const TaskModel& task_model, double eta,
                                 double beta, double gamma) {
  if (!options_.use_memory) return;
  const std::vector<double>& a = task_model.attention();
  LTE_CHECK_EQ(static_cast<int64_t>(a.size()), options_.num_memory_modes);

  // Attention-masked exponential writes (Eq. 14-16). The paper's literal
  // form "η·(a_R × v_R^T) + (1−η)·M" multiplies the *whole* matrix by
  // (1−η) on every task, which drives the memories toward zero unless the
  // write rate is vanishingly small (the paper searches rates down to
  // 5e-5). We implement the attention mask as a per-row convex blend —
  // row r moves a fraction η·a_R[r] toward the new content — which keeps
  // the memories on a stable scale at any write rate while preserving the
  // attentive-write semantics ("new information attentively added").
  auto blend_rows = [&](nn::Matrix* memory, double rate,
                        const std::vector<double>& content) {
    for (int64_t r = 0; r < memory->rows(); ++r) {
      const double w = rate * a[static_cast<size_t>(r)];
      std::vector<double> row = memory->Row(r);
      for (size_t c = 0; c < row.size(); ++c) {
        row[c] = (1.0 - w) * row[c] + w * content[c];
      }
      memory->SetRow(r, row);
    }
  };
  // M_vR ⇐ blend toward v_R (Eq. 14).
  blend_rows(&memory_vr_, eta, task_model.uis_feature());
  // M_R ⇐ blend toward ∇θ_R Loss accumulated during the local adaptation
  // (Eq. 15).
  blend_rows(&memory_r_, beta, task_model.support_grad_r());
  // M_CP[r] ⇐ blend toward the task's adapted M_cp (Eq. 16).
  for (int64_t r = 0; r < options_.num_memory_modes; ++r) {
    const double w = gamma * a[static_cast<size_t>(r)];
    nn::Matrix& mode = memory_cp_[static_cast<size_t>(r)];
    nn::Matrix blended(mode.rows(), mode.cols());
    blended.AddScaled(mode, 1.0 - w);
    blended.AddScaled(task_model.m_cp(), w);
    mode = std::move(blended);
  }
}

void MetaLearner::Save(BinaryWriter* writer) const {
  writer->WriteI64(options_.uis_feature_dim);
  writer->WriteI64(options_.tuple_feature_dim);
  writer->WriteI64(options_.embedding_size);
  writer->WriteI64Vector(options_.uis_hidden);
  writer->WriteI64Vector(options_.tuple_hidden);
  writer->WriteI64Vector(options_.clf_hidden);
  writer->WriteBool(options_.use_memory);
  writer->WriteI64(options_.num_memory_modes);
  writer->WriteDouble(options_.sigma);
  phi_r_.Save(writer);
  phi_tau_.Save(writer);
  phi_clf_.Save(writer);
  if (options_.use_memory) {
    memory_vr_.Save(writer);
    memory_r_.Save(writer);
    writer->WriteU64(memory_cp_.size());
    for (const nn::Matrix& m : memory_cp_) m.Save(writer);
  }
}

Status MetaLearner::LoadFrom(BinaryReader* reader,
                             std::unique_ptr<MetaLearner>* out) {
  std::unique_ptr<MetaLearner> learner(new MetaLearner());
  MetaLearnerOptions& opt = learner->options_;
  LTE_RETURN_IF_ERROR(reader->ReadI64(&opt.uis_feature_dim));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&opt.tuple_feature_dim));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&opt.embedding_size));
  LTE_RETURN_IF_ERROR(reader->ReadI64Vector(&opt.uis_hidden));
  LTE_RETURN_IF_ERROR(reader->ReadI64Vector(&opt.tuple_hidden));
  LTE_RETURN_IF_ERROR(reader->ReadI64Vector(&opt.clf_hidden));
  LTE_RETURN_IF_ERROR(reader->ReadBool(&opt.use_memory));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&opt.num_memory_modes));
  LTE_RETURN_IF_ERROR(reader->ReadDouble(&opt.sigma));
  LTE_RETURN_IF_ERROR(learner->phi_r_.Load(reader));
  LTE_RETURN_IF_ERROR(learner->phi_tau_.Load(reader));
  LTE_RETURN_IF_ERROR(learner->phi_clf_.Load(reader));
  if (opt.use_memory) {
    LTE_RETURN_IF_ERROR(learner->memory_vr_.Load(reader));
    LTE_RETURN_IF_ERROR(learner->memory_r_.Load(reader));
    uint64_t n = 0;
    LTE_RETURN_IF_ERROR(reader->ReadU64(&n));
    if (static_cast<int64_t>(n) != opt.num_memory_modes) {
      return Status::IoError("meta-learner load: memory mode mismatch");
    }
    learner->memory_cp_.assign(n, nn::Matrix());
    for (nn::Matrix& m : learner->memory_cp_) {
      LTE_RETURN_IF_ERROR(m.Load(reader));
    }
  }
  // Structural sanity: loaded block shapes must match the options.
  if (learner->phi_r_.in_features() != opt.uis_feature_dim ||
      learner->phi_tau_.in_features() != opt.tuple_feature_dim ||
      learner->phi_r_.out_features() != opt.embedding_size) {
    return Status::IoError("meta-learner load: block shape mismatch");
  }
  *out = std::move(learner);
  return Status::OK();
}

double TaskModel::ForwardLogit(const std::vector<double>& emb_r,
                               const std::vector<double>& tuple,
                               nn::Mlp::Cache* tau_cache,
                               nn::Mlp::Cache* clf_cache,
                               std::vector<double>* concat,
                               std::vector<double>* conv) const {
  const std::vector<double> emb_tau = f_tau_.Forward(tuple, tau_cache);
  std::vector<double> z = emb_r;
  z.insert(z.end(), emb_tau.begin(), emb_tau.end());
  std::vector<double> c = use_memory_ ? m_cp_.MatVec(z) : z;
  const std::vector<double> out = f_clf_.Forward(c, clf_cache);
  if (concat != nullptr) *concat = std::move(z);
  if (conv != nullptr) *conv = std::move(c);
  return out[0];
}

double TaskModel::AccumulateBatch(
    const std::vector<std::vector<double>>& tuples,
    const std::vector<double>& labels) {
  LTE_CHECK_EQ(tuples.size(), labels.size());
  LTE_CHECK(!tuples.empty());
  const double inv_n = 1.0 / static_cast<double>(tuples.size());

  // emb_R is shared by the whole batch: one forward through f_R, one
  // backward with the summed embedding gradient.
  nn::Mlp::Cache r_cache;
  const std::vector<double> emb_r = f_r_.Forward(uis_feature_, &r_cache);
  const auto ne = static_cast<int64_t>(emb_r.size());
  std::vector<double> g_emb_r_sum(emb_r.size(), 0.0);

  double loss = 0.0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    nn::Mlp::Cache tau_cache;
    nn::Mlp::Cache clf_cache;
    std::vector<double> concat;
    std::vector<double> conv;
    const double logit = ForwardLogit(emb_r, tuples[i], &tau_cache, &clf_cache,
                                      &concat, &conv);
    loss += inv_n * nn::BceWithLogits(logit, labels[i]);
    const double dlogit = inv_n * nn::BceWithLogitsGrad(logit, labels[i]);

    std::vector<double> g_conv = f_clf_.Backward(clf_cache, {dlogit});
    std::vector<double> g_concat;
    if (use_memory_) {
      grad_m_cp_.AddOuter(g_conv, concat);
      g_concat = m_cp_.TransposeMatVec(g_conv);
    } else {
      g_concat = std::move(g_conv);
    }
    for (int64_t j = 0; j < ne; ++j) {
      g_emb_r_sum[static_cast<size_t>(j)] += g_concat[static_cast<size_t>(j)];
    }
    const std::vector<double> g_emb_tau(g_concat.begin() + ne, g_concat.end());
    f_tau_.Backward(tau_cache, g_emb_tau);
  }
  f_r_.Backward(r_cache, g_emb_r_sum);
  return loss;
}

void TaskModel::ApplyAccumulated(double lr, double max_grad_norm) {
  // Record the θ_R gradient before consuming it (Eq. 15 uses it to write the
  // UIS-feature memory).
  const std::vector<double> gr = f_r_.GetGradients();
  LTE_CHECK_EQ(gr.size(), support_grad_r_.size());
  for (size_t i = 0; i < gr.size(); ++i) support_grad_r_[i] += gr[i];

  double effective_lr = lr;
  if (max_grad_norm > 0.0) {
    double norm_sq = 0.0;
    auto add = [&norm_sq](const std::vector<double>& g) {
      for (double x : g) norm_sq += x * x;
    };
    add(gr);
    add(f_tau_.GetGradients());
    add(f_clf_.GetGradients());
    if (use_memory_) {
      const double m = grad_m_cp_.FrobeniusNorm();
      norm_sq += m * m;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > max_grad_norm) effective_lr = lr * max_grad_norm / norm;
  }

  f_r_.ApplyGradients(effective_lr);
  f_tau_.ApplyGradients(effective_lr);
  f_clf_.ApplyGradients(effective_lr);
  if (use_memory_) {
    m_cp_.AddScaled(grad_m_cp_, -effective_lr);
  }
  ZeroGrad();
  emb_r_valid_ = false;
}

void TaskModel::Save(BinaryWriter* writer) const {
  writer->WriteBool(use_memory_);
  writer->WriteDoubleVector(uis_feature_);
  writer->WriteDoubleVector(attention_);
  f_r_.Save(writer);
  f_tau_.Save(writer);
  f_clf_.Save(writer);
  if (use_memory_) m_cp_.Save(writer);
  writer->WriteDoubleVector(support_grad_r_);
}

Status TaskModel::LoadFrom(BinaryReader* reader, TaskModel* out) {
  TaskModel tm;
  LTE_RETURN_IF_ERROR(reader->ReadBool(&tm.use_memory_));
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&tm.uis_feature_));
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&tm.attention_));
  LTE_RETURN_IF_ERROR(tm.f_r_.Load(reader));
  LTE_RETURN_IF_ERROR(tm.f_tau_.Load(reader));
  LTE_RETURN_IF_ERROR(tm.f_clf_.Load(reader));
  if (tm.use_memory_) {
    LTE_RETURN_IF_ERROR(tm.m_cp_.Load(reader));
  }
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&tm.support_grad_r_));

  // Structural sanity: the three blocks and M_cp must agree on the shared
  // embedding size and the classifier input width (Section VI-A wiring).
  const int64_t ne = tm.f_r_.out_features();
  if (tm.f_tau_.out_features() != ne || tm.f_clf_.out_features() != 1) {
    return Status::IoError("task model load: block shape mismatch");
  }
  if (static_cast<int64_t>(tm.uis_feature_.size()) != tm.f_r_.in_features()) {
    return Status::IoError("task model load: UIS feature width mismatch");
  }
  if (static_cast<int64_t>(tm.support_grad_r_.size()) !=
      tm.f_r_.ParameterCount()) {
    return Status::IoError("task model load: support gradient size mismatch");
  }
  if (tm.use_memory_) {
    if (tm.m_cp_.rows() != ne || tm.m_cp_.cols() != 2 * ne ||
        tm.f_clf_.in_features() != ne) {
      return Status::IoError("task model load: conversion shape mismatch");
    }
    tm.grad_m_cp_ = nn::Matrix(ne, 2 * ne);
  } else if (tm.f_clf_.in_features() != 2 * ne) {
    return Status::IoError("task model load: classifier input mismatch");
  }
  tm.ZeroGrad();
  tm.emb_r_valid_ = false;
  *out = std::move(tm);
  return Status::OK();
}

void TaskModel::ZeroGrad() {
  f_r_.ZeroGrad();
  f_tau_.ZeroGrad();
  f_clf_.ZeroGrad();
  if (use_memory_) grad_m_cp_.Fill(0.0);
}

void TaskModel::WarmUisEmbedding() {
  if (!emb_r_valid_) {
    emb_r_cache_ = f_r_.Forward(uis_feature_);
    emb_r_valid_ = true;
  }
}

double TaskModel::Logit(const std::vector<double>& tuple) const {
  if (!emb_r_valid_) {
    emb_r_cache_ = f_r_.Forward(uis_feature_);
    emb_r_valid_ = true;
  }
  return ForwardLogit(emb_r_cache_, tuple, nullptr, nullptr, nullptr, nullptr);
}

double TaskModel::PredictProbability(const std::vector<double>& tuple) const {
  return nn::Sigmoid(Logit(tuple));
}

void TaskModel::PredictProbabilityBatch(std::span<const double> tuples,
                                        int64_t count, BatchScratch* scratch,
                                        std::span<double> out,
                                        nn::BatchKernel kernel) const {
  LTE_CHECK_GE(count, 0);
  LTE_CHECK_EQ(static_cast<int64_t>(out.size()), count);
  if (count == 0) return;
  if (!emb_r_valid_) {
    emb_r_cache_ = f_r_.Forward(uis_feature_);
    emb_r_valid_ = true;
  }
  const auto ne = static_cast<int64_t>(emb_r_cache_.size());
  const int64_t in_w = f_tau_.in_features();

  // The emb_R-dependent prefixes are the same for every row; evaluate them
  // once per call.
  if (use_memory_) {
    // c = M_cp · [emb_R; emb_tau]. `mcp_left[o]` is the exact running-sum
    // prefix that MatVec reaches after the first N_e terms, and each row
    // continues the accumulation over its emb_tau half in the same order —
    // bit-identical to the per-row product.
    scratch->mcp_left.resize(static_cast<size_t>(ne));
    for (int64_t o = 0; o < ne; ++o) {
      const double* w = m_cp_.data().data() + o * 2 * ne;
      double s = 0.0;
      for (int64_t c = 0; c < ne; ++c) {
        s += w[c] * emb_r_cache_[static_cast<size_t>(c)];
      }
      scratch->mcp_left[static_cast<size_t>(o)] = s;
    }
  } else {
    // Plain MAML: f_clf reads the concatenation [emb_R, emb_tau]. Fold the
    // constant emb_R head into a first-layer prefix so rows feed f_clf just
    // their emb_tau half — no per-row copy of emb_R and half the layer-1
    // multiply-accumulates, with the accumulation order unchanged.
    f_clf_.ComputeFirstLayerPrefix(emb_r_cache_, &scratch->clf1_left);
  }

  // Slice the batch so the per-stage activations (emb_tau, clf_in, logits)
  // stay cache-resident while each weight matrix streams over them; a full
  // 1024-row block's activations otherwise evict the weights between stages.
  // Rows are independent and tile boundaries restart cleanly at every
  // multiple of kRowTile, so slicing cannot change any output bit.
  constexpr int64_t kSlice = 128;
  for (int64_t s0 = 0; s0 < count; s0 += kSlice) {
    const int64_t sc = std::min(kSlice, count - s0);
    const std::span<const double> slice =
        tuples.subspan(static_cast<size_t>(s0 * in_w),
                       static_cast<size_t>(sc * in_w));
    if (kernel == nn::BatchKernel::kSimd) {
      // Throughput mode: every stage runs through the float32 vector
      // kernels. The per-call constant folds above (mcp_left / clf1_left)
      // stay double — they are computed once, not per row — and seed the
      // float accumulators, preserving the reference's operation order at
      // float precision.
      f_tau_.ForwardBatchSimdInto(slice, sc, &scratch->mlp,
                                  &scratch->emb_tau);
      if (use_memory_) {
        // M_cp right-half product as one transposed-layout layer: weights
        // stride 2·N_e with the first N_e columns skipped, accumulators
        // seeded from mcp_left, no bias, no activation.
        const int64_t padded = nn::simd::PaddedCount(sc);
        scratch->fxt.resize(static_cast<size_t>(ne * padded));
        nn::simd::PackTransposedFloat(scratch->emb_tau.data(), sc, ne, padded,
                                      scratch->fxt.data());
        scratch->finit.resize(static_cast<size_t>(ne));
        for (int64_t o = 0; o < ne; ++o) {
          scratch->finit[static_cast<size_t>(o)] =
              static_cast<float>(scratch->mcp_left[static_cast<size_t>(o)]);
        }
        scratch->fyt.resize(static_cast<size_t>(ne * padded));
        nn::simd::LayerForwardTransposed(
            m_cp_.data().data(), /*w_stride=*/2 * ne, /*skip=*/ne,
            /*data_w=*/ne, /*out_w=*/ne, scratch->fxt.data(), padded,
            scratch->finit.data(), /*bias=*/nullptr, /*relu=*/false,
            scratch->fyt.data());
        scratch->clf_in.resize(static_cast<size_t>(sc * ne));
        nn::simd::UnpackTransposedToDouble(scratch->fyt.data(), sc, ne, padded,
                                           scratch->clf_in.data());
        f_clf_.ForwardBatchSimdInto(scratch->clf_in, sc, &scratch->mlp,
                                    &scratch->logits);
      } else {
        f_clf_.ForwardBatchSimdInto(scratch->emb_tau, sc, &scratch->mlp,
                                    &scratch->logits, scratch->clf1_left);
      }
      for (int64_t n = 0; n < sc; ++n) {
        out[static_cast<size_t>(s0 + n)] =
            nn::Sigmoid(scratch->logits[static_cast<size_t>(n)]);
      }
      continue;
    }
    f_tau_.ForwardBatchInto(slice, sc, &scratch->mlp, &scratch->emb_tau);

    if (use_memory_) {
      scratch->clf_in.resize(static_cast<size_t>(sc * ne));
      // Row-tiled like Mlp::ForwardBatchInto: each M_cp row is streamed once
      // per tile rather than once per tuple, the inner loop runs kRowTile
      // independent scalar accumulator chains, and the tile rows are read in
      // place at stride N_e (a transposed pack measures slower on the
      // deployment hosts — see the note in Mlp::ForwardBatchInto).
      // Accumulator t starts from the shared prefix and adds row t's tau
      // terms in ascending order — the per-row operation sequence of the
      // reference MatVec, so the product stays bit-identical.
      constexpr int64_t kRowTile = 8;
      const int64_t full = sc - sc % kRowTile;
      for (int64_t n0 = 0; n0 < full; n0 += kRowTile) {
        const double* base = scratch->emb_tau.data() + n0 * ne;
        for (int64_t o = 0; o < ne; ++o) {
          const double* w = m_cp_.data().data() + o * 2 * ne + ne;
          double acc[kRowTile];
          for (int64_t t = 0; t < kRowTile; ++t) {
            acc[t] = scratch->mcp_left[static_cast<size_t>(o)];
          }
          for (int64_t c = 0; c < ne; ++c) {
            const double wc = w[c];
            for (int64_t t = 0; t < kRowTile; ++t) {
              acc[t] += wc * base[t * ne + c];
            }
          }
          for (int64_t t = 0; t < kRowTile; ++t) {
            scratch->clf_in.data()[(n0 + t) * ne + o] = acc[t];
          }
        }
      }
      // Ragged tail: one row at a time, identical per-row operation order.
      for (int64_t n = full; n < sc; ++n) {
        const double* tau = scratch->emb_tau.data() + n * ne;
        for (int64_t o = 0; o < ne; ++o) {
          const double* w = m_cp_.data().data() + o * 2 * ne + ne;
          double s = scratch->mcp_left[static_cast<size_t>(o)];
          for (int64_t c = 0; c < ne; ++c) s += w[c] * tau[c];
          scratch->clf_in.data()[n * ne + o] = s;
        }
      }
      f_clf_.ForwardBatchInto(scratch->clf_in, sc, &scratch->mlp,
                              &scratch->logits);
    } else {
      f_clf_.ForwardBatchInto(scratch->emb_tau, sc, &scratch->mlp,
                              &scratch->logits, scratch->clf1_left);
    }

    for (int64_t n = 0; n < sc; ++n) {
      out[static_cast<size_t>(s0 + n)] =
          nn::Sigmoid(scratch->logits[static_cast<size_t>(n)]);
    }
  }
}

double TaskModel::EvaluateLoss(const std::vector<std::vector<double>>& tuples,
                               const std::vector<double>& labels) const {
  LTE_CHECK_EQ(tuples.size(), labels.size());
  if (tuples.empty()) return 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    loss += nn::BceWithLogits(Logit(tuples[i]), labels[i]);
  }
  return loss / static_cast<double>(tuples.size());
}

}  // namespace lte::core
