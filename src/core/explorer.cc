#include "core/explorer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <utility>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/uis_feature.h"

namespace lte::core {
namespace {

constexpr uint64_t kModelMagic = 0x4C54454D4F44454CULL;  // "LTEMODEL".
constexpr uint64_t kModelVersion = 1;

void SaveOptions(const ExplorerOptions& opt, BinaryWriter* w) {
  // MetaTaskGenOptions.
  w->WriteI64(opt.task_gen.k_u);
  w->WriteI64(opt.task_gen.k_s);
  w->WriteI64(opt.task_gen.k_q);
  w->WriteI64(opt.task_gen.delta);
  w->WriteI64(opt.task_gen.alpha);
  w->WriteI64(opt.task_gen.psi);
  w->WriteI64(opt.task_gen.expansion_l);
  w->WriteDouble(opt.task_gen.cluster_sample_fraction);
  w->WriteI64(opt.task_gen.min_cluster_sample);
  // MetaLearnerOptions (needed to rebuild the Basic variant online).
  w->WriteI64(opt.learner.uis_feature_dim);
  w->WriteI64(opt.learner.tuple_feature_dim);
  w->WriteI64(opt.learner.embedding_size);
  w->WriteI64Vector(opt.learner.uis_hidden);
  w->WriteI64Vector(opt.learner.tuple_hidden);
  w->WriteI64Vector(opt.learner.clf_hidden);
  w->WriteBool(opt.learner.use_memory);
  w->WriteI64(opt.learner.num_memory_modes);
  w->WriteDouble(opt.learner.sigma);
  // FpFnOptions + online schedule.
  w->WriteDouble(opt.fpfn.outer_fraction);
  w->WriteDouble(opt.fpfn.inner_fraction);
  w->WriteI64(opt.num_meta_tasks);
  w->WriteI64(opt.online_steps);
  w->WriteI64(opt.online_batch_size);
  w->WriteDouble(opt.online_lr);
}

Status LoadOptions(BinaryReader* r, ExplorerOptions* opt) {
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.k_u));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.k_s));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.k_q));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.delta));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.alpha));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.psi));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.expansion_l));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->task_gen.cluster_sample_fraction));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.min_cluster_sample));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->learner.uis_feature_dim));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->learner.tuple_feature_dim));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->learner.embedding_size));
  LTE_RETURN_IF_ERROR(r->ReadI64Vector(&opt->learner.uis_hidden));
  LTE_RETURN_IF_ERROR(r->ReadI64Vector(&opt->learner.tuple_hidden));
  LTE_RETURN_IF_ERROR(r->ReadI64Vector(&opt->learner.clf_hidden));
  LTE_RETURN_IF_ERROR(r->ReadBool(&opt->learner.use_memory));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->learner.num_memory_modes));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->learner.sigma));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->fpfn.outer_fraction));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->fpfn.inner_fraction));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->num_meta_tasks));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->online_steps));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->online_batch_size));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->online_lr));
  return Status::OK();
}

}  // namespace

const data::Subspace* Explorer::subspace(int64_t s) const {
  if (s < 0 || s >= num_subspaces()) return nullptr;
  return &subspaces_[static_cast<size_t>(s)];
}

const std::vector<std::vector<double>>* Explorer::InitialTuples(
    int64_t s) const {
  if (!pretrained_ || s < 0 || s >= num_subspaces()) return nullptr;
  return &states_[static_cast<size_t>(s)].initial_tuples;
}

const MetaTaskGenerator* Explorer::generator(int64_t s) const {
  if (!pretrained_ || s < 0 || s >= num_subspaces()) return nullptr;
  return &states_[static_cast<size_t>(s)].generator;
}

TupleEncoder Explorer::MakeEncoder(int64_t s) const {
  const std::vector<int64_t>& attrs =
      subspaces_[static_cast<size_t>(s)].attribute_indices;
  return [this, attrs](const std::vector<double>& point) {
    return encoder_.EncodeProjected(point, attrs);
  };
}

Status Explorer::Pretrain(const data::Table& table,
                          const std::vector<data::Subspace>& subspaces,
                          bool train_meta, Rng* rng) {
  if (subspaces.empty()) {
    return Status::InvalidArgument("explorer: no subspaces");
  }
  subspaces_ = subspaces;
  encoder_ = preprocess::TabularEncoder(options_.encoder);
  LTE_RETURN_IF_ERROR(encoder_.Fit(table, rng));

  states_.clear();
  states_.resize(subspaces_.size());
  task_generation_seconds_ = 0.0;
  meta_training_seconds_ = 0.0;

  // Phase 1 — clustering contexts and initial tuples, sequential on the
  // caller's stream (draw-for-draw the pre-parallel path, so the Basic
  // variant is unaffected by the offline parallelization).
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    SubspaceState& state = states_[s];
    state.generator = MetaTaskGenerator(options_.task_gen);
    const std::vector<std::vector<double>> points =
        data::ProjectRows(table, subspaces_[s]);
    LTE_RETURN_IF_ERROR(state.generator.Init(points, rng));

    // Initial tuples: the k_s centers of C^s plus Δ random sample tuples —
    // the same construction as a meta-task's support set (paper Section
    // V-D), so the online labels line up with the meta-trained input.
    const SubspaceContext& ctx = state.generator.context();
    state.initial_tuples = ctx.centers_s;
    const auto n_sample = static_cast<int64_t>(ctx.sample_points.size());
    for (int64_t i = 0; i < options_.task_gen.delta; ++i) {
      state.initial_tuples.push_back(
          ctx.sample_points[static_cast<size_t>(rng->UniformInt(n_sample))]);
    }
  }

  // Phase 2 — task generation + encoding + meta-training. Meta-subspaces
  // are independent (Algorithm 2 runs once per subspace), so they fan out
  // on the shared pool. Subspace s trains on the key-split stream
  // fork_base.Fork(s): no lane ever touches another lane's RNG, which makes
  // the trained model bit-identical for any num_threads, including 1.
  if (train_meta) {
    Rng fork_base = rng->Fork();
    const auto n = static_cast<int64_t>(subspaces_.size());
    std::vector<Status> statuses(static_cast<size_t>(n));
    std::vector<double> gen_seconds(static_cast<size_t>(n), 0.0);
    std::vector<double> train_seconds(static_cast<size_t>(n), 0.0);
    ThreadPool::Shared().ParallelFor(
        0, n, ResolveThreadCount(options_.num_threads), [&](int64_t s) {
          SubspaceState& state = states_[static_cast<size_t>(s)];
          Rng sub_rng = fork_base.Fork(static_cast<uint64_t>(s));
          Stopwatch sw;
          const std::vector<MetaTask> tasks =
              state.generator.GenerateTaskSet(options_.num_meta_tasks,
                                              &sub_rng);
          const std::vector<EncodedMetaTask> encoded = EncodeTasks(
              tasks, MakeEncoder(s), options_.trainer.num_threads);
          gen_seconds[static_cast<size_t>(s)] = sw.ElapsedSeconds();

          sw.Restart();
          MetaLearnerOptions lopt = options_.learner;
          lopt.uis_feature_dim = options_.task_gen.k_u;
          lopt.tuple_feature_dim = encoder_.ProjectedWidth(
              subspaces_[static_cast<size_t>(s)].attribute_indices);
          state.meta_learner = std::make_unique<MetaLearner>(lopt, &sub_rng);
          MetaTrainStats stats;
          statuses[static_cast<size_t>(s)] =
              MetaTrain(encoded, options_.trainer, &sub_rng,
                        state.meta_learner.get(), &stats);
          train_seconds[static_cast<size_t>(s)] = sw.ElapsedSeconds();
        });
    for (int64_t s = 0; s < n; ++s) {
      LTE_RETURN_IF_ERROR(statuses[static_cast<size_t>(s)]);
      task_generation_seconds_ += gen_seconds[static_cast<size_t>(s)];
      meta_training_seconds_ += train_seconds[static_cast<size_t>(s)];
    }
  }
  pretrained_ = true;
  meta_trained_ = train_meta;
  return Status::OK();
}

Status Explorer::StartExploration(
    const std::vector<std::vector<double>>& labels_per_subspace,
    Variant variant, Rng* rng) {
  if (!pretrained_) {
    return Status::FailedPrecondition("explorer: Pretrain has not run");
  }
  if (labels_per_subspace.empty() ||
      static_cast<int64_t>(labels_per_subspace.size()) > num_subspaces()) {
    return Status::InvalidArgument(
        "explorer: label sets must cover 1..num_subspaces() subspaces");
  }
  if ((variant == Variant::kMeta || variant == Variant::kMetaStar) &&
      !meta_trained_) {
    return Status::FailedPrecondition(
        "explorer: meta variant requires Pretrain(train_meta=true)");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("explorer: rng must not be null");
  }
  // Validate every label set before mutating any online state, so a failed
  // call leaves the previous exploration intact.
  for (size_t s = 0; s < labels_per_subspace.size(); ++s) {
    if (labels_per_subspace[s].size() != states_[s].initial_tuples.size()) {
      return Status::InvalidArgument(
          "explorer: label count mismatch in subspace " + std::to_string(s));
    }
  }
  variant_ = variant;
  active_count_ = static_cast<int64_t>(labels_per_subspace.size());

  // Subspaces adapt independently, so they fan out on the shared pool under
  // the same determinism contract as Pretrain: subspace s draws only from
  // the key-split stream fork_base.Fork(s), and every lane writes its own
  // states_[s] slot, so the adapted models are bit-identical for any
  // num_threads, including 1.
  Rng fork_base = rng->Fork();
  ThreadPool::Shared().ParallelFor(
      0, active_count_, ResolveThreadCount(options_.num_threads),
      [&](int64_t si) {
        const auto s = static_cast<size_t>(si);
        SubspaceState& state = states_[s];
        Rng sub_rng = fork_base.Fork(static_cast<uint64_t>(si));
        const std::vector<double>& labels = labels_per_subspace[s];
        const SubspaceContext& ctx = state.generator.context();
        const auto k_s = static_cast<size_t>(state.generator.options().k_s);

        // v_R from the center labels (first k_s entries).
        const std::vector<double> center_labels(labels.begin(),
                                                labels.begin() + k_s);
        const std::vector<double> uis_feature = BuildUisFeature(
            center_labels, ctx.proximity_s, state.generator.expansion_l());

        // Basic trains the same architecture from scratch; Meta/Meta* adapt
        // the meta-learned initialization (the underlined path of
        // Algorithm 2).
        std::unique_ptr<MetaLearner> basic_learner;
        const MetaLearner* learner = state.meta_learner.get();
        if (variant == Variant::kBasic) {
          MetaLearnerOptions lopt = options_.learner;
          lopt.uis_feature_dim = options_.task_gen.k_u;
          lopt.tuple_feature_dim = encoder_.ProjectedWidth(
              subspaces_[s].attribute_indices);
          lopt.use_memory = false;
          basic_learner = std::make_unique<MetaLearner>(lopt, &sub_rng);
          learner = basic_learner.get();
        }
        state.task_model =
            std::make_unique<TaskModel>(learner->CreateTaskModel(uis_feature));

        const TupleEncoder encode = MakeEncoder(si);
        std::vector<std::vector<double>> x;
        x.reserve(state.initial_tuples.size());
        for (const auto& p : state.initial_tuples) x.push_back(encode(p));
        LocallyAdapt(state.task_model.get(), x, labels, options_.online_steps,
                     options_.online_batch_size, options_.online_lr, &sub_rng);

        if (variant == Variant::kMetaStar) {
          state.fpfn.emplace(ctx, center_labels, options_.fpfn);
        } else {
          state.fpfn.reset();
        }
      });
  // Clear stale online state beyond the active prefix.
  for (size_t s = labels_per_subspace.size(); s < states_.size(); ++s) {
    states_[s].task_model.reset();
    states_[s].fpfn.reset();
  }
  return Status::OK();
}

Status Explorer::ValidateServing(const data::Table& table) const {
  if (active_count_ <= 0) {
    return Status::FailedPrecondition(
        "explorer: RetrieveMatches/PredictRows before StartExploration");
  }
  for (int64_t s = 0; s < active_count_; ++s) {
    for (int64_t a : subspaces_[static_cast<size_t>(s)].attribute_indices) {
      if (a >= table.num_columns()) {
        return Status::InvalidArgument(
            "explorer: table is narrower than subspace " + std::to_string(s) +
            " (needs attribute " + std::to_string(a) + ")");
      }
    }
  }
  return Status::OK();
}

double Explorer::PredictRowInTable(const data::Table& table,
                                   int64_t r) const {
  for (int64_t s = 0; s < active_count_; ++s) {
    const std::vector<double> point = table.RowProjected(
        r, subspaces_[static_cast<size_t>(s)].attribute_indices);
    if (PredictSubspaceUnchecked(s, point) < 0.5) return 0.0;
  }
  return 1.0;
}

Status Explorer::PredictRows(const data::Table& table,
                             std::span<const int64_t> rows,
                             std::vector<double>* predictions) const {
  if (predictions == nullptr) {
    return Status::InvalidArgument("explorer: predictions must not be null");
  }
  LTE_RETURN_IF_ERROR(ValidateServing(table));
  for (int64_t r : rows) {
    if (r < 0 || r >= table.num_rows()) {
      return Status::OutOfRange("explorer: row index " + std::to_string(r) +
                                " outside [0, " +
                                std::to_string(table.num_rows()) + ")");
    }
  }
  const auto n = static_cast<int64_t>(rows.size());
  predictions->assign(rows.size(), 0.0);
  // Contiguous lanes writing disjoint per-index slots: bit-identical output
  // at any thread count.
  ThreadPool::Shared().ParallelForShards(
      0, n, ResolveThreadCount(options_.num_threads),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          (*predictions)[static_cast<size_t>(i)] =
              PredictRowInTable(table, rows[static_cast<size_t>(i)]);
        }
      });
  return Status::OK();
}

Status Explorer::RetrieveMatches(const data::Table& table, int64_t limit,
                                 std::vector<int64_t>* matches) const {
  if (matches == nullptr) {
    return Status::InvalidArgument("explorer: matches must not be null");
  }
  matches->clear();
  LTE_RETURN_IF_ERROR(ValidateServing(table));
  if (limit == 0) return Status::OK();  // Only limit < 0 means "unlimited".
  const int64_t num_rows = table.num_rows();
  if (num_rows == 0) return Status::OK();

  // Order-preserving chunked scan. Chunk boundaries depend only on the row
  // count, lanes collect match indices into per-chunk slots, and the slots
  // are concatenated in row order afterwards, so the result is bit-identical
  // at any thread count. With a positive limit, lanes stop claiming chunks
  // once the matches found so far already cover it: chunks are claimed in
  // increasing order, so every match found lies in a chunk that precedes
  // all unclaimed ones — the first `limit` matches in row order are already
  // in hand, and later chunks cannot contribute earlier rows.
  constexpr int64_t kChunkRows = 1024;
  const int64_t num_chunks = (num_rows + kChunkRows - 1) / kChunkRows;
  std::vector<std::vector<int64_t>> chunk_matches(
      static_cast<size_t>(num_chunks));
  std::atomic<int64_t> found{0};
  ThreadPool::Shared().ParallelForEarlyExit(
      num_chunks, ResolveThreadCount(options_.num_threads),
      [&](int64_t c) {
        const int64_t lo = c * kChunkRows;
        const int64_t hi = std::min(lo + kChunkRows, num_rows);
        std::vector<int64_t>& slot = chunk_matches[static_cast<size_t>(c)];
        for (int64_t r = lo; r < hi; ++r) {
          if (PredictRowInTable(table, r) > 0.5) slot.push_back(r);
        }
        if (!slot.empty()) {
          found.fetch_add(static_cast<int64_t>(slot.size()),
                          std::memory_order_relaxed);
        }
      },
      [&] {
        return limit > 0 && found.load(std::memory_order_relaxed) >= limit;
      });
  for (const std::vector<int64_t>& slot : chunk_matches) {
    for (int64_t r : slot) {
      matches->push_back(r);
      if (limit > 0 && static_cast<int64_t>(matches->size()) >= limit) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

Status Explorer::Save(const std::string& path) const {
  if (!pretrained_) {
    return Status::FailedPrecondition("explorer: Save before Pretrain");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  BinaryWriter w(&out);
  w.WriteU64(kModelMagic);
  w.WriteU64(kModelVersion);
  SaveOptions(options_, &w);
  encoder_.Save(&w);
  w.WriteBool(meta_trained_);
  w.WriteU64(subspaces_.size());
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    w.WriteI64Vector(subspaces_[s].attribute_indices);
    const SubspaceContext& ctx = states_[s].generator.context();
    w.WritePointSet(ctx.centers_u);
    w.WritePointSet(ctx.centers_s);
    w.WritePointSet(ctx.centers_q);
    w.WritePointSet(ctx.sample_points);
    w.WritePointSet(states_[s].initial_tuples);
    const bool has_learner = states_[s].meta_learner != nullptr;
    w.WriteBool(has_learner);
    if (has_learner) states_[s].meta_learner->Save(&w);
  }
  return w.status();
}

Status Explorer::LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  BinaryReader r(&in);
  uint64_t magic = 0;
  uint64_t version = 0;
  LTE_RETURN_IF_ERROR(r.ReadU64(&magic));
  if (magic != kModelMagic) {
    return Status::InvalidArgument(path + " is not an LTE model file");
  }
  LTE_RETURN_IF_ERROR(r.ReadU64(&version));
  if (version != kModelVersion) {
    return Status::InvalidArgument("unsupported LTE model version " +
                                   std::to_string(version));
  }
  ExplorerOptions options;
  LTE_RETURN_IF_ERROR(LoadOptions(&r, &options));
  // Threading is a serving-host knob, not model state: keep the values this
  // instance was constructed with (neither is serialized — LoadOptions
  // leaves them at their defaults).
  options.num_threads = options_.num_threads;
  options.trainer.num_threads = options_.trainer.num_threads;
  preprocess::TabularEncoder encoder;
  LTE_RETURN_IF_ERROR(encoder.Load(&r));
  bool meta_trained = false;
  LTE_RETURN_IF_ERROR(r.ReadBool(&meta_trained));
  uint64_t num_subspaces = 0;
  LTE_RETURN_IF_ERROR(r.ReadU64(&num_subspaces));
  if (num_subspaces == 0) {
    return Status::IoError("model load: no subspaces");
  }

  std::vector<data::Subspace> subspaces(num_subspaces);
  std::vector<SubspaceState> states(num_subspaces);
  for (uint64_t s = 0; s < num_subspaces; ++s) {
    LTE_RETURN_IF_ERROR(r.ReadI64Vector(&subspaces[s].attribute_indices));
    SubspaceContext ctx;
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&ctx.centers_u));
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&ctx.centers_s));
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&ctx.centers_q));
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&ctx.sample_points));
    if (static_cast<int64_t>(ctx.centers_u.size()) != options.task_gen.k_u ||
        static_cast<int64_t>(ctx.centers_s.size()) != options.task_gen.k_s ||
        static_cast<int64_t>(ctx.centers_q.size()) != options.task_gen.k_q) {
      return Status::IoError("model load: context shape mismatch");
    }
    states[s].generator = MetaTaskGenerator(options.task_gen);
    states[s].generator.RestoreContext(std::move(ctx));
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&states[s].initial_tuples));
    bool has_learner = false;
    LTE_RETURN_IF_ERROR(r.ReadBool(&has_learner));
    if (has_learner) {
      LTE_RETURN_IF_ERROR(
          MetaLearner::LoadFrom(&r, &states[s].meta_learner));
    } else if (meta_trained) {
      return Status::IoError("model load: missing meta-learner");
    }
  }

  options_ = options;
  encoder_ = std::move(encoder);
  subspaces_ = std::move(subspaces);
  states_ = std::move(states);
  pretrained_ = true;
  meta_trained_ = meta_trained;
  active_count_ = 0;
  task_generation_seconds_ = 0.0;
  meta_training_seconds_ = 0.0;
  return Status::OK();
}

Status Explorer::SuggestTuples(
    int64_t s, const std::vector<std::vector<double>>& candidates, int64_t k,
    std::vector<int64_t>* suggested) const {
  if (suggested == nullptr) {
    return Status::InvalidArgument("explorer: suggested must not be null");
  }
  suggested->clear();
  if (s < 0 || s >= active_count_ ||
      states_[static_cast<size_t>(s)].task_model == nullptr) {
    return Status::FailedPrecondition(
        "explorer: SuggestTuples on subspace " + std::to_string(s) +
        " before StartExploration adapted it");
  }
  if (k < 0) {
    return Status::InvalidArgument("explorer: k must be >= 0");
  }
  const SubspaceState& state = states_[static_cast<size_t>(s)];
  const std::vector<int64_t>& attrs =
      subspaces_[static_cast<size_t>(s)].attribute_indices;
  std::vector<double> uncertainty;
  uncertainty.reserve(candidates.size());
  for (const auto& point : candidates) {
    if (point.size() != attrs.size()) {
      return Status::InvalidArgument(
          "explorer: candidate width mismatch in subspace " +
          std::to_string(s));
    }
    const double p = state.task_model->PredictProbability(
        encoder_.EncodeProjected(point, attrs));
    uncertainty.push_back(std::abs(p - 0.5));
  }
  const size_t take =
      std::min(static_cast<size_t>(k), candidates.size());
  const std::vector<size_t> idx = ArgSmallestK(uncertainty, take);
  suggested->assign(idx.begin(), idx.end());
  return Status::OK();
}

Status Explorer::ContinueExploration(
    int64_t s, const std::vector<std::vector<double>>& points,
    const std::vector<double>& labels, Rng* rng) {
  if (s < 0 || s >= active_count_) {
    return Status::InvalidArgument("explorer: subspace not active");
  }
  if (points.empty() || points.size() != labels.size()) {
    return Status::InvalidArgument("explorer: points/labels mismatch");
  }
  const size_t width =
      subspaces_[static_cast<size_t>(s)].attribute_indices.size();
  for (const auto& p : points) {
    if (p.size() != width) {
      return Status::InvalidArgument(
          "explorer: point width mismatch in subspace " + std::to_string(s));
    }
  }
  SubspaceState& state = states_[static_cast<size_t>(s)];
  if (state.task_model == nullptr) {
    return Status::FailedPrecondition(
        "explorer: ContinueExploration before StartExploration");
  }
  const TupleEncoder encode = MakeEncoder(s);
  std::vector<std::vector<double>> x;
  x.reserve(points.size());
  for (const auto& p : points) x.push_back(encode(p));
  LocallyAdapt(state.task_model.get(), x, labels, options_.online_steps,
               options_.online_batch_size, options_.online_lr, rng);
  return Status::OK();
}

double Explorer::PredictSubspaceUnchecked(
    int64_t s, const std::vector<double>& point) const {
  const SubspaceState& state = states_[static_cast<size_t>(s)];
  const std::vector<double> encoded = encoder_.EncodeProjected(
      point, subspaces_[static_cast<size_t>(s)].attribute_indices);
  double pred =
      state.task_model->PredictProbability(encoded) > 0.5 ? 1.0 : 0.0;
  if (state.fpfn.has_value()) pred = state.fpfn->Refine(point, pred);
  return pred;
}

std::optional<double> Explorer::PredictSubspace(
    int64_t s, const std::vector<double>& point) const {
  if (s < 0 || s >= num_subspaces() ||
      states_[static_cast<size_t>(s)].task_model == nullptr) {
    return std::nullopt;
  }
  if (point.size() !=
      subspaces_[static_cast<size_t>(s)].attribute_indices.size()) {
    return std::nullopt;
  }
  return PredictSubspaceUnchecked(s, point);
}

std::optional<double> Explorer::PredictRow(
    const std::vector<double>& row) const {
  if (active_count_ <= 0) return std::nullopt;
  for (int64_t s = 0; s < active_count_; ++s) {
    std::vector<double> point;
    for (int64_t a : subspaces_[static_cast<size_t>(s)].attribute_indices) {
      if (static_cast<size_t>(a) >= row.size()) return std::nullopt;
      point.push_back(row[static_cast<size_t>(a)]);
    }
    if (PredictSubspaceUnchecked(s, point) < 0.5) return 0.0;
  }
  return 1.0;
}

}  // namespace lte::core
