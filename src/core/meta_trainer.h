#ifndef LTE_CORE_META_TRAINER_H_
#define LTE_CORE_META_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/meta_learner.h"
#include "core/meta_task.h"

namespace lte::core {

/// Encodes one raw subspace tuple into the classifier's input representation
/// v_tau (normally bound to TabularEncoder::EncodeProjected).
using TupleEncoder =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// A meta-task with pre-encoded support/query tuples, ready for training.
struct EncodedMetaTask {
  std::vector<double> uis_feature;
  std::vector<std::vector<double>> support_x;
  std::vector<double> support_y;
  std::vector<std::vector<double>> query_x;
  std::vector<double> query_y;
};

/// Encodes a generated task set once so every training epoch reuses it.
/// Tasks are encoded across up to `num_threads` pool lanes (0 = auto, one
/// lane per hardware thread; 1 = sequential). The output is identical for
/// any thread count; `encoder` must be safe to invoke concurrently (the
/// library's TabularEncoder::EncodeProjected binding is — it only reads the
/// fitted state).
std::vector<EncodedMetaTask> EncodeTasks(const std::vector<MetaTask>& tasks,
                                         const TupleEncoder& encoder,
                                         int64_t num_threads = 1);

/// The meta-gradient used by the global update. The paper's framework is
/// "orthogonal to all existing MAML-based meta-learning algorithms"
/// (Section VI-B); both realizations below share the task generation, the
/// classifier, and the memories, differing only in Eq. 13's gradient.
enum class MetaAlgorithm {
  /// First-order MAML: the global step descends the query-set gradient
  /// evaluated at the locally adapted parameters (the paper's one-step
  /// update "like [54]").
  kFomaml,
  /// Reptile (Nichol et al.): the global step moves φ toward the locally
  /// adapted parameters, φ ⇐ φ + λ·mean(θ̂ − φ); no query-set gradient.
  kReptile,
};

/// Hyper-parameters of Algorithm 2 (paper Section VI-C and VIII-A).
///
/// What drives meta-learning quality is the total number of *global* update
/// steps, epochs x |T^M| / task_batch_size: the paper runs 4 epochs over
/// 15000 tasks (~4000 global steps). The library defaults are tuned for the
/// scaled-down regime (a few hundred tasks), trading more epochs for fewer
/// tasks; at paper scale set epochs=4, local_steps=30 to match the paper.
struct MetaTrainerOptions {
  int64_t epochs = 20;
  /// Tasks per global one-step update ("training batch size", paper: 15).
  int64_t task_batch_size = 15;
  /// Local SGD steps per task ("training step size", paper: 30).
  int64_t local_steps = 5;
  /// Support-set minibatch per local step.
  int64_t local_batch_size = 10;
  /// ρ: local learning rate (Eq. 12).
  double local_lr = 0.2;
  /// λ: global learning rate (Eq. 13).
  double global_lr = 0.3;
  /// η, β, γ: memory write rates (Eq. 14-16).
  double eta = 0.05;
  double beta = 0.05;
  double gamma = 0.05;
  MetaAlgorithm algorithm = MetaAlgorithm::kFomaml;
  /// Pool lanes for the per-task local adaptations within a batch (tasks
  /// are independent given the batch-start globals), run on the process-wide
  /// ThreadPool. 0 = auto (one lane per hardware thread), 1 = the exact
  /// legacy sequential loop. Results are bit-identical for any thread
  /// count: every task draws from its own deterministically forked RNG,
  /// gradients aggregate in task order, and memory writes apply in task
  /// order after the batch joins.
  int64_t num_threads = 0;
};

/// Per-epoch summary returned by Train.
struct MetaTrainStats {
  /// Mean query-set loss of the adapted models, per epoch.
  std::vector<double> epoch_query_loss;
};

/// Runs one local adaptation (the underlined steps of Algorithm 2): `steps`
/// SGD steps of minibatches drawn from the labelled set, with gradient
/// clipping (`max_grad_norm`; <= 0 disables). This same routine fast-adapts
/// the meta-learner online with user labels.
void LocallyAdapt(TaskModel* model, const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y, int64_t steps,
                  int64_t batch_size, double lr, Rng* rng,
                  double max_grad_norm = 1.0);

/// Meta-trains `learner` over `tasks` (paper Algorithm 2): per task, a local
/// adaptation on the support set, then a first-order one-step global update
/// aggregating the query-set gradients of the adapted models across the task
/// batch, plus the attentive memory writes. Fails on an empty task set.
Status MetaTrain(const std::vector<EncodedMetaTask>& tasks,
                 const MetaTrainerOptions& options, Rng* rng,
                 MetaLearner* learner, MetaTrainStats* stats);

}  // namespace lte::core

#endif  // LTE_CORE_META_TRAINER_H_
