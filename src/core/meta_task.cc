#include "core/meta_task.h"

#include <algorithm>

#include "common/check.h"
#include "core/uis_feature.h"

namespace lte::core {

Status MetaTaskGenerator::Init(
    const std::vector<std::vector<double>>& subspace_points, Rng* rng) {
  if (subspace_points.empty()) {
    return Status::InvalidArgument("meta-task generator: empty subspace");
  }
  const auto n = static_cast<int64_t>(subspace_points.size());
  int64_t sample_size = static_cast<int64_t>(
      options_.cluster_sample_fraction * static_cast<double>(n));
  sample_size = std::max(sample_size, options_.min_cluster_sample);
  sample_size = std::min(sample_size, n);
  const int64_t max_k = std::max({options_.k_u, options_.k_s, options_.k_q});
  if (sample_size < max_k) {
    return Status::InvalidArgument(
        "meta-task generator: subspace sample smaller than largest k");
  }

  context_.sample_points.clear();
  context_.sample_points.reserve(static_cast<size_t>(sample_size));
  for (int64_t idx : rng->SampleWithoutReplacement(n, sample_size)) {
    context_.sample_points.push_back(subspace_points[static_cast<size_t>(idx)]);
  }

  // Three rounds of k-means: C^u, C^s, C^q (paper Section V-B).
  auto run = [&](int64_t k, std::vector<std::vector<double>>* centers) {
    cluster::KMeansOptions opt = options_.kmeans;
    opt.k = k;
    cluster::KMeansResult res;
    LTE_RETURN_IF_ERROR(cluster::KMeans(context_.sample_points, opt, rng, &res));
    *centers = std::move(res.centers);
    return Status::OK();
  };
  LTE_RETURN_IF_ERROR(run(options_.k_u, &context_.centers_u));
  LTE_RETURN_IF_ERROR(run(options_.k_s, &context_.centers_s));
  LTE_RETURN_IF_ERROR(run(options_.k_q, &context_.centers_q));

  context_.proximity_u =
      cluster::ProximityMatrix(context_.centers_u, context_.centers_u);
  context_.proximity_s =
      cluster::ProximityMatrix(context_.centers_s, context_.centers_u);
  initialized_ = true;
  return Status::OK();
}

void MetaTaskGenerator::RestoreContext(SubspaceContext context) {
  LTE_CHECK_EQ(static_cast<int64_t>(context.centers_u.size()), options_.k_u);
  LTE_CHECK_EQ(static_cast<int64_t>(context.centers_s.size()), options_.k_s);
  LTE_CHECK_EQ(static_cast<int64_t>(context.centers_q.size()), options_.k_q);
  LTE_CHECK(!context.sample_points.empty());
  context_ = std::move(context);
  context_.proximity_u =
      cluster::ProximityMatrix(context_.centers_u, context_.centers_u);
  context_.proximity_s =
      cluster::ProximityMatrix(context_.centers_s, context_.centers_u);
  initialized_ = true;
}

int64_t MetaTaskGenerator::expansion_l() const {
  if (options_.expansion_l > 0) return options_.expansion_l;
  return std::max<int64_t>(1, options_.k_u / 10);
}

geom::Region MetaTaskGenerator::GenerateUis(int64_t alpha, int64_t psi,
                                            Rng* rng) const {
  LTE_CHECK_MSG(initialized_, "GenerateUis before Init");
  LTE_CHECK_GT(alpha, 0);
  LTE_CHECK_GT(psi, 0);
  geom::Region region;
  for (int64_t part = 0; part < alpha; ++part) {
    // Pick a random seed center c_j in C^u and circumscribe its ψ nearest
    // centers with a convex hull (paper Section V-C). NearestCols of the
    // within-C^u proximity matrix includes c_j itself at distance 0.
    const int64_t j = rng->UniformInt(options_.k_u);
    std::vector<std::vector<double>> group;
    for (int64_t u : context_.proximity_u.NearestCols(j, psi)) {
      group.push_back(context_.centers_u[static_cast<size_t>(u)]);
    }
    region.AddPart(geom::ConvexRegion::HullOf(group));
  }
  return region;
}

MetaTask MetaTaskGenerator::GenerateTask(Rng* rng) const {
  LTE_CHECK_MSG(initialized_, "GenerateTask before Init");
  MetaTask task;
  task.uis = GenerateUis(options_.alpha, options_.psi, rng);

  // Support set: all k_s centers of C^s, then Δ random sample tuples
  // (paper Section V-D).
  const auto n_sample = static_cast<int64_t>(context_.sample_points.size());
  for (const auto& c : context_.centers_s) {
    task.support_points.push_back(c);
    task.support_labels.push_back(task.uis.Contains(c) ? 1.0 : 0.0);
  }
  for (int64_t i = 0; i < options_.delta; ++i) {
    const auto& p =
        context_.sample_points[static_cast<size_t>(rng->UniformInt(n_sample))];
    task.support_points.push_back(p);
    task.support_labels.push_back(task.uis.Contains(p) ? 1.0 : 0.0);
  }

  // Query set: all k_q centers of C^q, then Δ random sample tuples.
  for (const auto& c : context_.centers_q) {
    task.query_points.push_back(c);
    task.query_labels.push_back(task.uis.Contains(c) ? 1.0 : 0.0);
  }
  for (int64_t i = 0; i < options_.delta; ++i) {
    const auto& p =
        context_.sample_points[static_cast<size_t>(rng->UniformInt(n_sample))];
    task.query_points.push_back(p);
    task.query_labels.push_back(task.uis.Contains(p) ? 1.0 : 0.0);
  }

  // UIS feature vector from the C^s center labels (the first k_s support
  // labels), expanded onto C^u.
  const std::vector<double> center_labels(
      task.support_labels.begin(),
      task.support_labels.begin() + static_cast<long>(options_.k_s));
  task.uis_feature =
      BuildUisFeature(center_labels, context_.proximity_s, expansion_l());
  return task;
}

std::vector<MetaTask> MetaTaskGenerator::GenerateTaskSet(int64_t n,
                                                         Rng* rng) const {
  std::vector<MetaTask> tasks;
  tasks.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) tasks.push_back(GenerateTask(rng));
  return tasks;
}

}  // namespace lte::core
