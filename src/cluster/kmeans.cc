#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace lte::cluster {
namespace {

// k-means++ seeding: the first center is uniform; each subsequent center is
// drawn with probability proportional to the squared distance to the nearest
// already-chosen center.
std::vector<std::vector<double>> SeedPlusPlus(
    const std::vector<std::vector<double>>& points, int64_t k, Rng* rng) {
  const int64_t n = static_cast<int64_t>(points.size());
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<size_t>(k));
  centers.push_back(points[static_cast<size_t>(rng->UniformInt(n))]);

  std::vector<double> d2(static_cast<size_t>(n),
                         std::numeric_limits<double>::max());
  while (static_cast<int64_t>(centers.size()) < k) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double d = SquaredDistance(points[static_cast<size_t>(i)],
                                       centers.back());
      d2[static_cast<size_t>(i)] = std::min(d2[static_cast<size_t>(i)], d);
      total += d2[static_cast<size_t>(i)];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centers; duplicate one.
      centers.push_back(points[static_cast<size_t>(rng->UniformInt(n))]);
      continue;
    }
    double target = rng->Uniform(0.0, total);
    int64_t chosen = n - 1;
    for (int64_t i = 0; i < n; ++i) {
      target -= d2[static_cast<size_t>(i)];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[static_cast<size_t>(chosen)]);
  }
  return centers;
}

int64_t NearestCenter(const std::vector<double>& p,
                      const std::vector<std::vector<double>>& centers,
                      double* best_d2) {
  int64_t best = 0;
  double bd = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centers.size(); ++c) {
    const double d = SquaredDistance(p, centers[c]);
    if (d < bd) {
      bd = d;
      best = static_cast<int64_t>(c);
    }
  }
  if (best_d2 != nullptr) *best_d2 = bd;
  return best;
}

}  // namespace

Status KMeans(const std::vector<std::vector<double>>& points,
              const KMeansOptions& options, Rng* rng, KMeansResult* result) {
  const int64_t n = static_cast<int64_t>(points.size());
  if (n == 0) return Status::InvalidArgument("k-means: empty input");
  if (options.k <= 0) return Status::InvalidArgument("k-means: k must be > 0");
  if (options.k > n) {
    return Status::InvalidArgument("k-means: k exceeds number of points");
  }
  const size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("k-means: inconsistent point dimensions");
    }
  }

  KMeansResult res;
  res.centers = SeedPlusPlus(points, options.k, rng);
  res.assignments.assign(static_cast<size_t>(n), -1);

  // Scratch for the parallel assignment step: nearest center and distance
  // per point. The reduction over these runs sequentially in point order, so
  // inertia is bit-identical for any lane count.
  std::vector<int64_t> nearest(static_cast<size_t>(n), -1);
  std::vector<double> nearest_d2(static_cast<size_t>(n), 0.0);
  // The per-point body is cheap, so cap lanes by a minimum grain to keep
  // small clustering calls (per-subspace contexts) on the fast inline path.
  constexpr int64_t kMinPointsPerLane = 256;
  const int64_t lanes =
      std::min(ResolveThreadCount(options.num_threads),
               (n + kMinPointsPerLane - 1) / kMinPointsPerLane);

  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    res.iterations = iter + 1;
    // Assignment step: the nearest-center searches are independent per
    // point — the hot loop of clustering-heavy meta-task generation.
    ThreadPool::Shared().ParallelForShards(
        0, n, lanes, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            nearest[static_cast<size_t>(i)] =
                NearestCenter(points[static_cast<size_t>(i)], res.centers,
                              &nearest_d2[static_cast<size_t>(i)]);
          }
        });
    bool changed = false;
    res.inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      res.inertia += nearest_d2[static_cast<size_t>(i)];
      if (nearest[static_cast<size_t>(i)] !=
          res.assignments[static_cast<size_t>(i)]) {
        res.assignments[static_cast<size_t>(i)] =
            nearest[static_cast<size_t>(i)];
        changed = true;
      }
    }
    if (!changed) break;

    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(options.k), std::vector<double>(dim, 0.0));
    std::vector<int64_t> counts(static_cast<size_t>(options.k), 0);
    for (int64_t i = 0; i < n; ++i) {
      const auto c = static_cast<size_t>(res.assignments[static_cast<size_t>(i)]);
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) {
        sums[c][d] += points[static_cast<size_t>(i)][d];
      }
    }
    double movement = 0.0;
    for (size_t c = 0; c < sums.size(); ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point to keep k centers live.
        res.centers[c] = points[static_cast<size_t>(rng->UniformInt(n))];
        movement += 1.0;
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        const double nc = sums[c][d] / static_cast<double>(counts[c]);
        const double delta = nc - res.centers[c][d];
        movement += delta * delta;
        res.centers[c][d] = nc;
      }
    }
    if (movement < options.tolerance) break;
  }
  *result = std::move(res);
  return Status::OK();
}

}  // namespace lte::cluster
