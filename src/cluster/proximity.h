#ifndef LTE_CLUSTER_PROXIMITY_H_
#define LTE_CLUSTER_PROXIMITY_H_

#include <cstdint>
#include <vector>

namespace lte::cluster {

/// A dense matrix of Euclidean distances between two center sets.
///
/// Meta-task generation maintains two such matrices (paper Section V-B):
/// P^u (k_u x k_u, within C^u) drives the ψ-NN retrieval that forms simulated
/// UIS parts, and P^s (k_s x k_u, C^s against C^u) drives the UIS feature
/// vector expansion (Section VI-A) and the FP/FN optimizer (Section VII-B).
class ProximityMatrix {
 public:
  ProximityMatrix() = default;

  /// Builds the |rows| x |cols| distance matrix.
  ProximityMatrix(const std::vector<std::vector<double>>& row_centers,
                  const std::vector<std::vector<double>>& col_centers);

  int64_t num_rows() const { return num_rows_; }
  int64_t num_cols() const { return num_cols_; }

  /// Distance between row center `r` and column center `c`.
  double Distance(int64_t r, int64_t c) const;

  /// Indices (into the column set) of the k nearest column centers to row
  /// center `r`, ascending by distance. k is clamped to num_cols().
  std::vector<int64_t> NearestCols(int64_t r, int64_t k) const;

 private:
  int64_t num_rows_ = 0;
  int64_t num_cols_ = 0;
  std::vector<double> dist_;  // Row-major.
};

}  // namespace lte::cluster

#endif  // LTE_CLUSTER_PROXIMITY_H_
