#ifndef LTE_CLUSTER_KMEANS_H_
#define LTE_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace lte::cluster {

/// Options for Lloyd's k-means with k-means++ seeding.
struct KMeansOptions {
  int64_t k = 8;
  int64_t max_iterations = 50;
  /// Converged when no assignment changes or total center movement (squared)
  /// falls below this threshold.
  double tolerance = 1e-8;
  /// Pool lanes for the assignment step (nearest-center search per point).
  /// 0 = auto (one lane per hardware thread), 1 = sequential. The result is
  /// bit-identical for any value: per-point distances land in per-point
  /// slots and the inertia reduction always runs in point order.
  int64_t num_threads = 0;
};

/// Result of a k-means run.
struct KMeansResult {
  /// k cluster centers, each of the input dimension.
  std::vector<std::vector<double>> centers;
  /// Per-point index into `centers`.
  std::vector<int64_t> assignments;
  /// Sum of squared distances of points to their assigned centers.
  double inertia = 0.0;
  int64_t iterations = 0;
};

/// Runs k-means over `points` (all of equal dimension).
///
/// The clustering step of meta-task generation (paper Section V-B) runs this
/// three times per meta-subspace with k = k_u, k_s, k_q to obtain the center
/// sets C^u, C^s, C^q. Fails with InvalidArgument when k <= 0 or
/// k > |points|, or when points are empty / dimension-inconsistent.
Status KMeans(const std::vector<std::vector<double>>& points,
              const KMeansOptions& options, Rng* rng, KMeansResult* result);

}  // namespace lte::cluster

#endif  // LTE_CLUSTER_KMEANS_H_
