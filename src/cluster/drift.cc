#include "cluster/drift.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::cluster {
namespace {

constexpr double kErrorFloor = 1e-12;

}  // namespace

DriftDetector::DriftDetector(
    std::vector<std::vector<double>> centers,
    const std::vector<std::vector<double>>& baseline_points,
    DriftDetectorOptions options)
    : centers_(std::move(centers)), options_(options) {
  LTE_CHECK(!centers_.empty());
  LTE_CHECK(!baseline_points.empty());
  LTE_CHECK_GT(options_.window_size, 0);

  WindowStats baseline;
  baseline.counts.assign(centers_.size(), 0);
  for (const auto& p : baseline_points) Accumulate(p, &baseline);
  baseline_error_ =
      std::max(baseline.error_sum / static_cast<double>(baseline.n),
               kErrorFloor);
  baseline_fractions_.resize(centers_.size());
  for (size_t c = 0; c < centers_.size(); ++c) {
    baseline_fractions_[c] = static_cast<double>(baseline.counts[c]) /
                             static_cast<double>(baseline.n);
  }
  current_.counts.assign(centers_.size(), 0);
  completed_.counts.assign(centers_.size(), 0);
}

void DriftDetector::Accumulate(const std::vector<double>& point,
                               WindowStats* stats) const {
  double best = std::numeric_limits<double>::max();
  size_t best_c = 0;
  for (size_t c = 0; c < centers_.size(); ++c) {
    const double d = SquaredDistance(point, centers_[c]);
    if (d < best) {
      best = d;
      best_c = c;
    }
  }
  ++stats->counts[best_c];
  stats->error_sum += std::sqrt(best);
  ++stats->n;
}

void DriftDetector::Offer(const std::vector<double>& point) {
  Accumulate(point, &current_);
  ++points_seen_;
  if (current_.n >= options_.window_size) {
    completed_ = current_;
    has_completed_ = true;
    current_ = WindowStats{};
    current_.counts.assign(centers_.size(), 0);
  }
}

const DriftDetector::WindowStats* DriftDetector::EvaluationWindow() const {
  if (has_completed_) return &completed_;
  if (current_.n >= options_.window_size / 4 && current_.n > 0) {
    return &current_;
  }
  return nullptr;
}

double DriftDetector::ErrorRatio() const {
  const WindowStats* w = EvaluationWindow();
  if (w == nullptr) return 1.0;
  const double err = w->error_sum / static_cast<double>(w->n);
  return err / baseline_error_;
}

double DriftDetector::AssignmentDistance() const {
  const WindowStats* w = EvaluationWindow();
  if (w == nullptr) return 0.0;
  double tv = 0.0;
  for (size_t c = 0; c < centers_.size(); ++c) {
    const double f = static_cast<double>(w->counts[c]) /
                     static_cast<double>(w->n);
    tv += std::abs(f - baseline_fractions_[c]);
  }
  return 0.5 * tv;
}

bool DriftDetector::Drifted() const {
  if (EvaluationWindow() == nullptr) return false;
  return ErrorRatio() > options_.error_ratio_threshold ||
         AssignmentDistance() > options_.assignment_tv_threshold;
}

}  // namespace lte::cluster
