#ifndef LTE_CLUSTER_DRIFT_H_
#define LTE_CLUSTER_DRIFT_H_

#include <cstdint>
#include <vector>

namespace lte::cluster {

/// Options for distribution-drift detection.
struct DriftDetectorOptions {
  /// Points per tumbling evaluation window.
  int64_t window_size = 1024;
  /// Drift when the window's mean quantization error exceeds the baseline's
  /// by this factor (new data far from the old centers).
  double error_ratio_threshold = 1.5;
  /// Drift when the total-variation distance between the baseline and
  /// window assignment histograms exceeds this (mass moved between
  /// clusters).
  double assignment_tv_threshold = 0.25;
};

/// Dynamic maintenance support (paper Section V-E): meta-tasks and
/// meta-learners are built on sampled cluster summaries, so deciding whether
/// they need refreshing reduces to checking whether a subspace's clustering
/// still describes the incoming data.
///
/// The detector is seeded with the subspace's cluster centers and a baseline
/// sample (e.g. the context's sample_points). Stream new/updated tuples
/// through `Offer`; when a tumbling window's quantization error or
/// assignment histogram departs from the baseline, `Drifted()` turns true
/// and the caller should re-run the clustering step and re-train that
/// subspace's meta-learner.
class DriftDetector {
 public:
  DriftDetector(std::vector<std::vector<double>> centers,
                const std::vector<std::vector<double>>& baseline_points,
                DriftDetectorOptions options = {});

  /// Streams one subspace point.
  void Offer(const std::vector<double>& point);

  /// True when the most recent complete window (or the current partial
  /// window once it holds at least a quarter of `window_size`) departs from
  /// the baseline on either criterion.
  bool Drifted() const;

  /// Window mean quantization error divided by the baseline's (1.0 = no
  /// change; uses the same window selection as Drifted()).
  double ErrorRatio() const;

  /// Total-variation distance between baseline and window assignment
  /// histograms (0 = identical).
  double AssignmentDistance() const;

  int64_t points_seen() const { return points_seen_; }

 private:
  struct WindowStats {
    std::vector<int64_t> counts;
    double error_sum = 0.0;
    int64_t n = 0;
  };

  // Stats of the window Drifted()/ErrorRatio() evaluate: the last complete
  // window, or the current partial one when no window has completed yet and
  // it is large enough.
  const WindowStats* EvaluationWindow() const;
  void Accumulate(const std::vector<double>& point, WindowStats* stats) const;

  std::vector<std::vector<double>> centers_;
  DriftDetectorOptions options_;
  double baseline_error_ = 0.0;
  std::vector<double> baseline_fractions_;
  WindowStats current_;
  WindowStats completed_;
  bool has_completed_ = false;
  int64_t points_seen_ = 0;
};

}  // namespace lte::cluster

#endif  // LTE_CLUSTER_DRIFT_H_
