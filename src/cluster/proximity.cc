#include "cluster/proximity.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::cluster {

ProximityMatrix::ProximityMatrix(
    const std::vector<std::vector<double>>& row_centers,
    const std::vector<std::vector<double>>& col_centers)
    : num_rows_(static_cast<int64_t>(row_centers.size())),
      num_cols_(static_cast<int64_t>(col_centers.size())) {
  dist_.resize(static_cast<size_t>(num_rows_ * num_cols_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    for (int64_t c = 0; c < num_cols_; ++c) {
      dist_[static_cast<size_t>(r * num_cols_ + c)] = EuclideanDistance(
          row_centers[static_cast<size_t>(r)], col_centers[static_cast<size_t>(c)]);
    }
  }
}

double ProximityMatrix::Distance(int64_t r, int64_t c) const {
  LTE_CHECK_GE(r, 0);
  LTE_CHECK_LT(r, num_rows_);
  LTE_CHECK_GE(c, 0);
  LTE_CHECK_LT(c, num_cols_);
  return dist_[static_cast<size_t>(r * num_cols_ + c)];
}

std::vector<int64_t> ProximityMatrix::NearestCols(int64_t r, int64_t k) const {
  LTE_CHECK_GE(r, 0);
  LTE_CHECK_LT(r, num_rows_);
  k = std::min(k, num_cols_);
  if (k <= 0) return {};
  std::vector<double> row(dist_.begin() + r * num_cols_,
                          dist_.begin() + (r + 1) * num_cols_);
  const std::vector<size_t> idx = ArgSmallestK(row, static_cast<size_t>(k));
  return std::vector<int64_t>(idx.begin(), idx.end());
}

}  // namespace lte::cluster
