// Used-car marketplace exploration (the paper's CAR dataset scenario).
//
// A buyer browses a 50K-row listing table. Their interest — "a reasonably
// recent car, mid-range power, priced sensibly for its mileage" — is a
// concave, possibly disconnected region that resists SQL filters. The
// example runs the LTE pipeline end-to-end with a *hand-written* oracle
// (rather than a generated UIR) to show how a user plugs in their own
// labelling loop, and prints the top predicted listings.

#include <cstdio>

#include "core/lte.h"
#include "data/synthetic.h"
#include "preprocess/normalizer.h"

namespace {

// The buyer's (hidden) interest factorizes over the two subspaces the
// explore-by-example session works in, and each factor is a *disjunction* —
// a disconnected region in its 2-D projection:
//   {price, year}:    a recent car priced under 25k, OR an older bargain
//                     under 9k;
//   {mileage, power}: low mileage, OR high power (the buyer tolerates miles
//                     on a sporty car).
// The overall interest is the conjunction of the factors.
bool LikesPriceYear(double price, double year) {
  return (year >= 2010 && price < 25000) || (year < 2005 && price < 9000);
}

bool LikesMileagePower(double mileage, double power) {
  return mileage < 80000 || power > 150;
}

bool BuyerLikes(const std::vector<double>& raw_row) {
  return LikesPriceYear(raw_row[0], raw_row[1]) &&
         LikesMileagePower(raw_row[2], raw_row[3]);
}

}  // namespace

int main() {
  lte::Rng rng(29);
  lte::data::Table raw = lte::data::MakeCarLike(20000, &rng);

  // Normalize for the framework, but keep the raw table for the oracle and
  // for printing real listings back to the user.
  lte::preprocess::MinMaxNormalizer normalizer;
  if (!normalizer.Fit(raw).ok()) return 1;
  lte::data::Table table(raw.AttributeNames());
  for (int64_t r = 0; r < raw.num_rows(); ++r) {
    if (!table.AppendRow(normalizer.TransformRow(raw.Row(r))).ok()) return 1;
  }

  // The buyer cares about {price, year} and {mileage, power}.
  const std::vector<lte::data::Subspace> subspaces = {
      lte::data::Subspace{{0, 1}},
      lte::data::Subspace{{2, 3}},
  };

  lte::core::ExplorerOptions options;
  options.task_gen.k_u = 60;
  options.task_gen.k_s = 25;
  options.task_gen.k_q = 60;
  options.task_gen.alpha = 4;  // Complex (disconnected) simulated UISs.
  options.task_gen.psi = 15;
  options.num_meta_tasks = 150;
  options.learner.embedding_size = 24;
  options.learner.clf_hidden = {24};
  options.online_steps = 40;
  options.online_lr = 0.2;

  auto model = std::make_shared<lte::core::ExplorationModel>(options);
  lte::Status status =
      model->Pretrain(table, subspaces, /*train_meta=*/true, &rng);
  if (!status.ok()) {
    std::printf("pretrain failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Online: the buyer labels the initial tuples per subspace against that
  // subspace's interest factor. The oracle thinks in raw values, so subspace
  // points are mapped back through the normalizer.
  std::vector<std::vector<double>> labels(subspaces.size());
  for (size_t s = 0; s < subspaces.size(); ++s) {
    const auto& attrs = subspaces[s].attribute_indices;
    for (const auto& tuple : *model->InitialTuples(static_cast<int64_t>(s))) {
      const double a0 = normalizer.Inverse(attrs[0], tuple[0]);
      const double a1 = normalizer.Inverse(attrs[1], tuple[1]);
      const bool liked =
          s == 0 ? LikesPriceYear(a0, a1) : LikesMileagePower(a0, a1);
      labels[s].push_back(liked ? 1.0 : 0.0);
    }
  }
  lte::core::ExplorationSession session(model);
  status = session.StartExploration(labels, lte::core::Variant::kMetaStar,
                                    &rng);
  if (!status.ok()) {
    std::printf("exploration failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Final retrieval: the parallel batch scan returns the predicted-
  // interesting listings in row order.
  std::vector<int64_t> matches;
  status = session.RetrieveMatches(table, /*limit=*/-1, &matches);
  if (!status.ok()) {
    std::printf("retrieval failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%-10s %-6s %-10s %-8s  truth\n", "price", "year", "mileage",
              "power");
  int shown = 0;
  int64_t predicted = 0;
  int64_t hit = 0;
  for (int64_t r : matches) {
    ++predicted;
    const std::vector<double> raw_row = raw.Row(r);
    if (BuyerLikes(raw_row)) ++hit;
    if (shown < 10) {
      std::printf("%-10.0f %-6.0f %-10.0f %-8.0f  %s\n", raw_row[0],
                  raw_row[1], raw_row[2], raw_row[3],
                  BuyerLikes(raw_row) ? "yes" : "no");
      ++shown;
    }
  }
  std::printf("\n%lld listings predicted interesting; %lld match the "
              "buyer's hidden interest (precision %.2f)\n",
              static_cast<long long>(predicted), static_cast<long long>(hit),
              predicted > 0 ? static_cast<double>(hit) /
                                  static_cast<double>(predicted)
                            : 0.0);
  return 0;
}
