// Sky-survey exploration scenario (paper Section I, "Alice").
//
// Alice is an amateur astronomer exploring an SDSS-like sky-object table.
// Her familiar attributes are {rowc, colc, ra, dec}; her interest (a compact
// sky patch with a particular magnitude band) is too vague for SQL, so she
// explores by example: the system shows her a few dozen representative
// objects per subspace, she marks the interesting ones, and the meta-learned
// classifier infers her interest region.
//
// The example compares the Meta* variant against a plain SVM fed the same
// labelled tuples, reproducing the paper's qualitative result.

#include <cstdio>

#include "core/lte.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  lte::Rng rng(11);
  lte::data::Table sdss = lte::data::MakeSdssLike(20000, &rng);
  std::printf("SDSS-like table: %lld rows x %lld attributes\n",
              static_cast<long long>(sdss.num_rows()),
              static_cast<long long>(sdss.num_columns()));

  // Alice explores {rowc, colc} and {ra, dec}.
  std::vector<lte::data::Subspace> subspaces = {
      lte::data::Subspace{{0, 1}},  // rowc, colc
      lte::data::Subspace{{2, 3}},  // ra, dec
  };

  lte::eval::RunnerOptions options;
  options.explorer.task_gen.k_u = 60;
  options.explorer.task_gen.k_q = 60;
  options.explorer.num_meta_tasks = 150;
  options.explorer.learner.embedding_size = 24;
  options.explorer.learner.clf_hidden = {24};
  options.explorer.online_steps = 40;
  options.explorer.online_lr = 0.2;
  options.eval_sample_rows = 2000;
  options.seed = 2023;

  lte::eval::ExperimentRunner runner(std::move(sdss), subspaces, options);
  lte::Status status = runner.Init();
  if (!status.ok()) {
    std::printf("init failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Alice's "true" interest, simulated as a generated UIR (one convex sky
  // patch per subspace, the paper's M5 mode).
  const lte::eval::GroundTruthUir interest =
      runner.GenerateUir({"M5", 1, 20}, 2);

  lte::eval::TextTable table(
      {"method", "F1", "precision", "recall", "online-sec"});
  const int64_t budget = 30;
  for (lte::eval::Method m :
       {lte::eval::Method::kMetaStar, lte::eval::Method::kMeta,
        lte::eval::Method::kBasic, lte::eval::Method::kSvm}) {
    lte::eval::ExperimentResult res;
    status = runner.Run(m, interest, budget, &res);
    if (!status.ok()) {
      std::printf("%s failed: %s\n", lte::eval::MethodName(m).c_str(),
                  status.ToString().c_str());
      return 1;
    }
    table.AddRow(lte::eval::MethodName(m),
                 {res.f1, res.precision, res.recall, res.online_seconds});
  }
  std::printf("\nAlice's exploration (budget %lld labels per subspace):\n",
              static_cast<long long>(budget));
  table.Print();
  return 0;
}
