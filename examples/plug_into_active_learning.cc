// Plugging LTE into an existing active-learning IDE loop (paper Section
// III-B, "Other IDE Modules": the framework can be combined with iterative
// exploration).
//
// The initial exploration phase adapts the meta-learner from the few-shot
// labels; if the user keeps exploring, each further round feeds newly
// labelled tuples back through the same local-update path, exactly like the
// active-learning loops of AIDE/DSM but starting from meta-knowledge instead
// of from scratch. Each round queries ExplorationSession::SuggestTuples
// through a configurable exploration policy (DESIGN.md §2f — here
// epsilon-greedy over the adapted classifier's uncertainty) and a
// ConvergenceTracker decides when the explored region has stabilized enough
// to stop.

#include <cstdio>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/lte.h"
#include "data/synthetic.h"
#include "policy/suggest_policy.h"
#include "eval/convergence.h"
#include "eval/metrics.h"
#include "preprocess/normalizer.h"

namespace {

bool UserLikes(const std::vector<double>& point) {
  // Interest in subspace coordinates: a band around the diagonal.
  return std::abs(point[0] - point[1]) < 0.2;
}

}  // namespace

int main() {
  lte::Rng rng(41);
  lte::data::Table raw = lte::data::MakeBlobs(10000, 2, 6, &rng);
  lte::preprocess::MinMaxNormalizer normalizer;
  if (!normalizer.Fit(raw).ok()) return 1;
  lte::data::Table table(raw.AttributeNames());
  for (int64_t r = 0; r < raw.num_rows(); ++r) {
    if (!table.AppendRow(normalizer.TransformRow(raw.Row(r))).ok()) return 1;
  }
  const std::vector<lte::data::Subspace> subspaces = {
      lte::data::Subspace{{0, 1}}};

  lte::core::ExplorerOptions options;
  options.task_gen.k_u = 50;
  options.task_gen.k_s = 25;
  options.task_gen.k_q = 50;
  options.num_meta_tasks = 120;
  options.learner.embedding_size = 24;
  options.learner.clf_hidden = {24};
  options.online_steps = 40;
  options.online_lr = 0.2;

  auto model = std::make_shared<lte::core::ExplorationModel>(options);
  if (!model->Pretrain(table, subspaces, /*train_meta=*/true, &rng).ok()) {
    return 1;
  }
  lte::core::ExplorationSession session(model);

  // Round 0: the standard LTE initial exploration.
  std::vector<std::vector<double>> initial = *model->InitialTuples(0);
  std::vector<std::vector<double>> labelled_points = initial;
  std::vector<double> labelled_y;
  std::vector<std::vector<double>> labels(1);
  for (const auto& tuple : initial) {
    const double y = UserLikes(tuple) ? 1.0 : 0.0;
    labels[0].push_back(y);
    labelled_y.push_back(y);
  }
  // Stochastic exploration policies draw from the session-owned rng, so
  // reruns (and save/restore) reproduce the same suggestions.
  session.SeedRng(41);
  if (!session.StartExploration(labels, lte::core::Variant::kMeta, &rng)
           .ok()) {
    return 1;
  }
  // Swap the acquisition strategy (default: pure uncertainty sampling).
  // Epsilon-greedy keeps a 10% trickle of random candidates flowing so a
  // miscalibrated early model cannot lock onto a wrong boundary.
  lte::policy::PolicyOptions policy;
  policy.kind = lte::policy::PolicyKind::kEpsilonGreedy;
  policy.epsilon = 0.1;
  if (!session.ConfigureSuggestPolicy(0, policy).ok()) return 1;

  auto evaluate = [&]() {
    lte::eval::ConfusionCounts counts;
    for (int64_t r = 0; r < 2000; ++r) {
      const std::vector<double> row = table.Row(r);
      counts.Add(UserLikes(row) ? 1.0 : 0.0,
                 session.PredictRow(row).value_or(0.0));
    }
    return lte::eval::F1Score(counts);
  };
  std::printf("round 0 (initial exploration, %zu labels): F1 = %.3f\n",
              labelled_y.size(), evaluate());

  // Convergence probe: a fixed row set whose prediction churn between
  // rounds tells us when to stop (ground-truth-free, paper Section III-B).
  auto probe_predictions = [&]() {
    // The batch entry point evaluates the probe rows in one parallel pass.
    std::vector<int64_t> probe_rows(1000);
    std::iota(probe_rows.begin(), probe_rows.end(), 0);
    std::vector<double> preds;
    if (!session.PredictRows(table, probe_rows, &preds).ok()) preds.clear();
    return preds;
  };
  lte::eval::ConvergenceTracker tracker(/*churn_threshold=*/0.01,
                                        /*stable_rounds=*/2);
  tracker.AddRound(probe_predictions());

  // Rounds 1..5: iterative exploration. SuggestTuples scores the candidate
  // rows through the batch kernels and lets the configured policy pick 10
  // worth labelling; the user labels them,
  // and ContinueExploration feeds the *cumulative* labelled set back
  // through the local-update path (training on only the newest batch would
  // let it dominate and forget the rest).
  int64_t total_labels = static_cast<int64_t>(labelled_y.size());
  for (int round = 1; round <= 5; ++round) {
    std::vector<std::vector<double>> candidates;
    for (int64_t r = 0; r < 4000; ++r) candidates.push_back(table.Row(r));
    std::vector<int64_t> picked;
    if (!session.SuggestTuples(0, candidates, 10, &picked).ok()) return 1;
    for (int64_t idx : picked) {
      const std::vector<double>& row = candidates[static_cast<size_t>(idx)];
      labelled_points.push_back(row);
      labelled_y.push_back(UserLikes(row) ? 1.0 : 0.0);
    }
    if (!session.ContinueExploration(0, labelled_points, labelled_y, &rng)
             .ok()) {
      return 1;
    }
    total_labels += 10;
    tracker.AddRound(probe_predictions());
    std::printf("round %d (%lld labels total): F1 = %.3f, churn = %.3f\n",
                round, static_cast<long long>(total_labels), evaluate(),
                tracker.LastChurn());
    if (tracker.Converged()) {
      std::printf("converged after %lld rounds — stopping early\n",
                  static_cast<long long>(tracker.rounds() - 1));
      break;
    }
  }
  std::printf("done — meta-initialized exploration converges in few rounds\n");
  return 0;
}
