// An end-to-end command-line IDE session: the closest thing to deploying LTE
// as a product.
//
//   interactive_cli [csv_path] [model_path]
//
// * Loads a CSV (header + numeric columns); without one, generates the
//   SDSS-like synthetic table.
// * Pre-trains the meta-learners — or instantly restores them from
//   `model_path` if it exists (ExplorationModel::Save / Load), mirroring
//   the offline/online split of the paper's Figure 2.
// * Presents the initial tuples per subspace; you answer y/n on stdin
//   (pipe answers in for scripted runs).
// * Fast-adapts, prints the 10 best-matching rows, and synthesizes the SQL
//   filter equivalent to your learned interest region.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/lte.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "preprocess/normalizer.h"

namespace {

bool AskYesNo(const std::string& prompt) {
  std::printf("%s [y/n] ", prompt.c_str());
  std::fflush(stdout);
  std::string line;
  if (!std::getline(std::cin, line)) return false;
  return !line.empty() && (line[0] == 'y' || line[0] == 'Y' || line[0] == '1');
}

std::string DescribeTuple(const std::vector<std::string>& names,
                          const std::vector<int64_t>& attrs,
                          const std::vector<double>& raw_values) {
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[static_cast<size_t>(attrs[i])] + "=" +
           std::to_string(raw_values[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_path = argc > 1 ? argv[1] : "";
  const std::string model_path = argc > 2 ? argv[2] : "";
  lte::Rng rng(2024);

  // --- Load or generate the exploratory database. ---
  lte::data::Table raw;
  if (!csv_path.empty()) {
    const lte::Status s = lte::data::ReadCsv(csv_path, &raw);
    if (!s.ok()) {
      std::printf("failed to read %s: %s\n", csv_path.c_str(),
                  s.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %lld rows x %lld columns\n", csv_path.c_str(),
                static_cast<long long>(raw.num_rows()),
                static_cast<long long>(raw.num_columns()));
  } else {
    raw = lte::data::MakeSdssLike(15000, &rng);
    std::printf("no CSV given; generated SDSS-like table (%lld rows)\n",
                static_cast<long long>(raw.num_rows()));
  }

  lte::preprocess::MinMaxNormalizer normalizer;
  if (!normalizer.Fit(raw).ok()) return 1;
  lte::data::Table table(raw.AttributeNames());
  for (int64_t r = 0; r < raw.num_rows(); ++r) {
    if (!table.AppendRow(normalizer.TransformRow(raw.Row(r))).ok()) return 1;
  }

  // --- Offline phase: restore a saved model or pre-train and save. The
  // model is the part a serving deployment trains once and shares across
  // every user's session. ---
  lte::core::ExplorerOptions options;
  options.task_gen.k_u = 50;
  options.task_gen.k_s = 15;  // 20 labels per subspace with delta = 5.
  options.task_gen.k_q = 50;
  options.num_meta_tasks = 150;
  options.learner.embedding_size = 24;
  options.learner.clf_hidden = {24};

  auto model = std::make_shared<lte::core::ExplorationModel>(options);
  bool restored = false;
  if (!model_path.empty()) {
    if (model->Load(model_path).ok()) {
      std::printf("restored pre-trained model from %s\n", model_path.c_str());
      restored = true;
    }
  }
  if (!restored) {
    std::vector<int64_t> attrs;
    for (int64_t a = 0; a < table.num_columns(); ++a) attrs.push_back(a);
    const std::vector<lte::data::Subspace> subspaces =
        lte::data::DecomposeSpace(attrs, 2, &rng);
    std::printf("pre-training on %zu subspaces...\n", subspaces.size());
    const lte::Status s =
        model->Pretrain(table, subspaces, /*train_meta=*/true, &rng);
    if (!s.ok()) {
      std::printf("pretrain failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (!model_path.empty()) {
      if (model->Save(model_path).ok()) {
        std::printf("saved model to %s\n", model_path.c_str());
      }
    }
  }

  // --- Online phase: this terminal is one user — one session. ---
  const std::vector<std::string> names = table.AttributeNames();
  std::vector<std::vector<double>> labels(
      static_cast<size_t>(model->num_subspaces()));
  for (int64_t s = 0; s < model->num_subspaces(); ++s) {
    const auto& attrs = model->subspace(s)->attribute_indices;
    std::printf("\n-- subspace %lld --\n", static_cast<long long>(s));
    for (const auto& tuple : *model->InitialTuples(s)) {
      std::vector<double> raw_values;
      for (size_t i = 0; i < attrs.size(); ++i) {
        raw_values.push_back(normalizer.Inverse(attrs[i], tuple[i]));
      }
      const bool liked =
          AskYesNo("interesting?  " + DescribeTuple(names, attrs, raw_values));
      labels[static_cast<size_t>(s)].push_back(liked ? 1.0 : 0.0);
    }
  }

  lte::core::ExplorationSession session(model);
  lte::Status s =
      session.StartExploration(labels, lte::core::Variant::kMetaStar, &rng);
  if (!s.ok()) {
    std::printf("exploration failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- Retrieval: top matches + the equivalent SQL filter. The limit-
  // bounded parallel scan stops early once ten matches are in hand. ---
  std::printf("\nbest-matching tuples:\n");
  std::vector<int64_t> matches;
  s = session.RetrieveMatches(table, /*limit=*/10, &matches);
  if (!s.ok()) {
    std::printf("retrieval failed: %s\n", s.ToString().c_str());
    return 1;
  }
  for (int64_t r : matches) {
    const std::vector<double> raw_row = raw.Row(r);
    std::string line;
    for (size_t c = 0; c < raw_row.size(); ++c) {
      if (c > 0) line += ", ";
      line += names[c] + "=" + std::to_string(raw_row[c]);
    }
    std::printf("  %s\n", line.c_str());
  }
  if (matches.empty()) std::printf("  (none)\n");

  lte::core::SynthesizedQuery query;
  s = lte::core::SynthesizeQuery(session, lte::core::QuerySynthesisOptions{},
                                 &query);
  if (s.ok()) {
    std::printf("\nequivalent SQL filter:\n%s\n",
                query.ToSql("data", names, &normalizer).c_str());
  }
  return 0;
}
