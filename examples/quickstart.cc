// Quickstart: the full learn-to-explore loop on a small synthetic dataset.
//
//   1. Build a table and decompose its attributes into 2-D subspaces.
//   2. Offline: pre-train an ExplorationModel from automatically generated
//      meta-tasks (no user labels involved).
//   3. Online: attach an ExplorationSession and "label" the initial tuples
//      the framework selects (here a scripted user who likes the lower-left
//      corner of every subspace).
//   4. Fast-adapt and query the predicted user-interest region with the
//      batch prediction surface.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/lte.h"
#include "data/synthetic.h"
#include "preprocess/normalizer.h"

int main() {
  lte::Rng rng(7);

  // --- Data: 4 attributes, mixture-of-blobs distribution, normalized. ---
  lte::data::Table raw = lte::data::MakeBlobs(/*num_rows=*/8000,
                                              /*num_attributes=*/4,
                                              /*num_blobs=*/5, &rng);
  lte::preprocess::MinMaxNormalizer normalizer;
  if (!normalizer.Fit(raw).ok()) return 1;
  lte::data::Table table(raw.AttributeNames());
  for (int64_t r = 0; r < raw.num_rows(); ++r) {
    if (!table.AppendRow(normalizer.TransformRow(raw.Row(r))).ok()) return 1;
  }

  // --- Subspace decomposition (random 2-D split, as in the paper). ---
  const std::vector<lte::data::Subspace> subspaces =
      lte::data::DecomposeSpace({0, 1, 2, 3}, /*subspace_dim=*/2, &rng);
  std::printf("decomposed 4 attributes into %zu subspaces\n",
              subspaces.size());

  // --- Offline phase: meta-task generation + meta-training. The model is
  // user-independent; in a serving deployment it would be trained once and
  // shared (by reference) across every user's session. ---
  lte::core::ExplorerOptions options;
  options.task_gen.k_u = 50;
  options.task_gen.k_s = 25;  // Budget B = k_s + delta = 30 labels/subspace.
  options.task_gen.k_q = 50;
  options.num_meta_tasks = 150;
  options.learner.embedding_size = 24;
  options.learner.clf_hidden = {24};
  options.online_steps = 40;
  options.online_lr = 0.2;

  auto model = std::make_shared<lte::core::ExplorationModel>(options);
  lte::Status status =
      model->Pretrain(table, subspaces, /*train_meta=*/true, &rng);
  if (!status.ok()) {
    std::printf("pretrain failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("pre-training done: task generation %.2fs, meta-training %.2fs\n",
              model->task_generation_seconds(), model->meta_training_seconds());

  // --- Online phase: one user's session; the scripted user labels the
  // initial tuples. (A single-user program can equally use the Explorer
  // facade, which bundles a model with one default session.) ---
  // Interest: per subspace, points whose first coordinate is below that
  // attribute's median (a half-plane per subspace, conjunctive across
  // subspaces — roughly a quarter of the data overall).
  std::vector<double> medians(subspaces.size());
  for (size_t s = 0; s < subspaces.size(); ++s) {
    std::vector<double> values =
        table.column(subspaces[s].attribute_indices[0]).values();
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    medians[s] = values[values.size() / 2];
  }
  const auto user_likes = [&](size_t s, const std::vector<double>& point) {
    return point[0] < medians[s];
  };
  std::vector<std::vector<double>> labels(subspaces.size());
  for (size_t s = 0; s < subspaces.size(); ++s) {
    for (const auto& tuple : *model->InitialTuples(static_cast<int64_t>(s))) {
      labels[s].push_back(user_likes(s, tuple) ? 1.0 : 0.0);
    }
    std::printf("subspace %zu: user labelled %zu initial tuples\n", s,
                labels[s].size());
  }

  lte::core::ExplorationSession session(model);
  status = session.StartExploration(labels, lte::core::Variant::kMetaStar,
                                    &rng);
  if (!status.ok()) {
    std::printf("exploration failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // --- Retrieve: batch-predict the whole table (parallel chunked scan). ---
  std::vector<int64_t> all_rows(static_cast<size_t>(table.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<double> predictions;
  status = session.PredictRows(table, all_rows, &predictions);
  if (!status.ok()) {
    std::printf("prediction failed: %s\n", status.ToString().c_str());
    return 1;
  }

  int64_t predicted = 0;
  int64_t actually = 0;
  int64_t correct_positive = 0;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    const std::vector<double> row = table.Row(r);
    bool truth = true;
    for (size_t s = 0; s < subspaces.size(); ++s) {
      std::vector<double> p;
      for (int64_t a : subspaces[s].attribute_indices) {
        p.push_back(row[static_cast<size_t>(a)]);
      }
      truth = truth && user_likes(s, p);
    }
    const bool pred = predictions[static_cast<size_t>(r)] > 0.5;
    predicted += pred ? 1 : 0;
    actually += truth ? 1 : 0;
    correct_positive += (pred && truth) ? 1 : 0;
  }
  std::printf("predicted %lld interesting tuples (%lld truly interesting, "
              "%lld overlap)\n",
              static_cast<long long>(predicted),
              static_cast<long long>(actually),
              static_cast<long long>(correct_positive));
  return 0;
}
