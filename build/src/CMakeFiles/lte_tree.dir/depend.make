# Empty dependencies file for lte_tree.
# This may be replaced when dependencies are built.
