file(REMOVE_RECURSE
  "CMakeFiles/lte_tree.dir/tree/decision_tree.cc.o"
  "CMakeFiles/lte_tree.dir/tree/decision_tree.cc.o.d"
  "liblte_tree.a"
  "liblte_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
