file(REMOVE_RECURSE
  "liblte_tree.a"
)
