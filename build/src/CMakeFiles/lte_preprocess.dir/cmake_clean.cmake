file(REMOVE_RECURSE
  "CMakeFiles/lte_preprocess.dir/preprocess/gmm.cc.o"
  "CMakeFiles/lte_preprocess.dir/preprocess/gmm.cc.o.d"
  "CMakeFiles/lte_preprocess.dir/preprocess/jenks.cc.o"
  "CMakeFiles/lte_preprocess.dir/preprocess/jenks.cc.o.d"
  "CMakeFiles/lte_preprocess.dir/preprocess/normalizer.cc.o"
  "CMakeFiles/lte_preprocess.dir/preprocess/normalizer.cc.o.d"
  "CMakeFiles/lte_preprocess.dir/preprocess/tabular_encoder.cc.o"
  "CMakeFiles/lte_preprocess.dir/preprocess/tabular_encoder.cc.o.d"
  "liblte_preprocess.a"
  "liblte_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
