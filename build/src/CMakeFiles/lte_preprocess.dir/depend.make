# Empty dependencies file for lte_preprocess.
# This may be replaced when dependencies are built.
