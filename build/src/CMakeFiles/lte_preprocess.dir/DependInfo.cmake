
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/preprocess/gmm.cc" "src/CMakeFiles/lte_preprocess.dir/preprocess/gmm.cc.o" "gcc" "src/CMakeFiles/lte_preprocess.dir/preprocess/gmm.cc.o.d"
  "/root/repo/src/preprocess/jenks.cc" "src/CMakeFiles/lte_preprocess.dir/preprocess/jenks.cc.o" "gcc" "src/CMakeFiles/lte_preprocess.dir/preprocess/jenks.cc.o.d"
  "/root/repo/src/preprocess/normalizer.cc" "src/CMakeFiles/lte_preprocess.dir/preprocess/normalizer.cc.o" "gcc" "src/CMakeFiles/lte_preprocess.dir/preprocess/normalizer.cc.o.d"
  "/root/repo/src/preprocess/tabular_encoder.cc" "src/CMakeFiles/lte_preprocess.dir/preprocess/tabular_encoder.cc.o" "gcc" "src/CMakeFiles/lte_preprocess.dir/preprocess/tabular_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
