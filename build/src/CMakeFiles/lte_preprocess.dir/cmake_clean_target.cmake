file(REMOVE_RECURSE
  "liblte_preprocess.a"
)
