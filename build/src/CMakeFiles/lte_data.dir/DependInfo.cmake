
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/column.cc" "src/CMakeFiles/lte_data.dir/data/column.cc.o" "gcc" "src/CMakeFiles/lte_data.dir/data/column.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/lte_data.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/lte_data.dir/data/csv.cc.o.d"
  "/root/repo/src/data/sampling.cc" "src/CMakeFiles/lte_data.dir/data/sampling.cc.o" "gcc" "src/CMakeFiles/lte_data.dir/data/sampling.cc.o.d"
  "/root/repo/src/data/subspace.cc" "src/CMakeFiles/lte_data.dir/data/subspace.cc.o" "gcc" "src/CMakeFiles/lte_data.dir/data/subspace.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/lte_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/lte_data.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/lte_data.dir/data/table.cc.o" "gcc" "src/CMakeFiles/lte_data.dir/data/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
