file(REMOVE_RECURSE
  "liblte_data.a"
)
