# Empty compiler generated dependencies file for lte_data.
# This may be replaced when dependencies are built.
