file(REMOVE_RECURSE
  "CMakeFiles/lte_data.dir/data/column.cc.o"
  "CMakeFiles/lte_data.dir/data/column.cc.o.d"
  "CMakeFiles/lte_data.dir/data/csv.cc.o"
  "CMakeFiles/lte_data.dir/data/csv.cc.o.d"
  "CMakeFiles/lte_data.dir/data/sampling.cc.o"
  "CMakeFiles/lte_data.dir/data/sampling.cc.o.d"
  "CMakeFiles/lte_data.dir/data/subspace.cc.o"
  "CMakeFiles/lte_data.dir/data/subspace.cc.o.d"
  "CMakeFiles/lte_data.dir/data/synthetic.cc.o"
  "CMakeFiles/lte_data.dir/data/synthetic.cc.o.d"
  "CMakeFiles/lte_data.dir/data/table.cc.o"
  "CMakeFiles/lte_data.dir/data/table.cc.o.d"
  "liblte_data.a"
  "liblte_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
