file(REMOVE_RECURSE
  "CMakeFiles/lte_svm.dir/svm/kernel.cc.o"
  "CMakeFiles/lte_svm.dir/svm/kernel.cc.o.d"
  "CMakeFiles/lte_svm.dir/svm/smo.cc.o"
  "CMakeFiles/lte_svm.dir/svm/smo.cc.o.d"
  "CMakeFiles/lte_svm.dir/svm/svm.cc.o"
  "CMakeFiles/lte_svm.dir/svm/svm.cc.o.d"
  "liblte_svm.a"
  "liblte_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
