
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svm/kernel.cc" "src/CMakeFiles/lte_svm.dir/svm/kernel.cc.o" "gcc" "src/CMakeFiles/lte_svm.dir/svm/kernel.cc.o.d"
  "/root/repo/src/svm/smo.cc" "src/CMakeFiles/lte_svm.dir/svm/smo.cc.o" "gcc" "src/CMakeFiles/lte_svm.dir/svm/smo.cc.o.d"
  "/root/repo/src/svm/svm.cc" "src/CMakeFiles/lte_svm.dir/svm/svm.cc.o" "gcc" "src/CMakeFiles/lte_svm.dir/svm/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
