# Empty compiler generated dependencies file for lte_svm.
# This may be replaced when dependencies are built.
