file(REMOVE_RECURSE
  "liblte_svm.a"
)
