file(REMOVE_RECURSE
  "liblte_geom.a"
)
