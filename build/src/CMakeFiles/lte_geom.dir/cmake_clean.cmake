file(REMOVE_RECURSE
  "CMakeFiles/lte_geom.dir/geom/convex_hull.cc.o"
  "CMakeFiles/lte_geom.dir/geom/convex_hull.cc.o.d"
  "CMakeFiles/lte_geom.dir/geom/region.cc.o"
  "CMakeFiles/lte_geom.dir/geom/region.cc.o.d"
  "liblte_geom.a"
  "liblte_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
