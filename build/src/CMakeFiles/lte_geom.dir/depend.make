# Empty dependencies file for lte_geom.
# This may be replaced when dependencies are built.
