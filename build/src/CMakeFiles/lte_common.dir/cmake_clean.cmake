file(REMOVE_RECURSE
  "CMakeFiles/lte_common.dir/common/binary_io.cc.o"
  "CMakeFiles/lte_common.dir/common/binary_io.cc.o.d"
  "CMakeFiles/lte_common.dir/common/math_util.cc.o"
  "CMakeFiles/lte_common.dir/common/math_util.cc.o.d"
  "CMakeFiles/lte_common.dir/common/rng.cc.o"
  "CMakeFiles/lte_common.dir/common/rng.cc.o.d"
  "CMakeFiles/lte_common.dir/common/status.cc.o"
  "CMakeFiles/lte_common.dir/common/status.cc.o.d"
  "CMakeFiles/lte_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/lte_common.dir/common/stopwatch.cc.o.d"
  "liblte_common.a"
  "liblte_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
