# Empty compiler generated dependencies file for lte_common.
# This may be replaced when dependencies are built.
