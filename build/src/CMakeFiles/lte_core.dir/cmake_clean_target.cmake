file(REMOVE_RECURSE
  "liblte_core.a"
)
