file(REMOVE_RECURSE
  "CMakeFiles/lte_core.dir/core/explorer.cc.o"
  "CMakeFiles/lte_core.dir/core/explorer.cc.o.d"
  "CMakeFiles/lte_core.dir/core/meta_learner.cc.o"
  "CMakeFiles/lte_core.dir/core/meta_learner.cc.o.d"
  "CMakeFiles/lte_core.dir/core/meta_task.cc.o"
  "CMakeFiles/lte_core.dir/core/meta_task.cc.o.d"
  "CMakeFiles/lte_core.dir/core/meta_trainer.cc.o"
  "CMakeFiles/lte_core.dir/core/meta_trainer.cc.o.d"
  "CMakeFiles/lte_core.dir/core/optimizer_fpfn.cc.o"
  "CMakeFiles/lte_core.dir/core/optimizer_fpfn.cc.o.d"
  "CMakeFiles/lte_core.dir/core/query_synthesis.cc.o"
  "CMakeFiles/lte_core.dir/core/query_synthesis.cc.o.d"
  "CMakeFiles/lte_core.dir/core/uis_feature.cc.o"
  "CMakeFiles/lte_core.dir/core/uis_feature.cc.o.d"
  "liblte_core.a"
  "liblte_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
