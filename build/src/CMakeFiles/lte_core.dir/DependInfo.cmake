
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/explorer.cc" "src/CMakeFiles/lte_core.dir/core/explorer.cc.o" "gcc" "src/CMakeFiles/lte_core.dir/core/explorer.cc.o.d"
  "/root/repo/src/core/meta_learner.cc" "src/CMakeFiles/lte_core.dir/core/meta_learner.cc.o" "gcc" "src/CMakeFiles/lte_core.dir/core/meta_learner.cc.o.d"
  "/root/repo/src/core/meta_task.cc" "src/CMakeFiles/lte_core.dir/core/meta_task.cc.o" "gcc" "src/CMakeFiles/lte_core.dir/core/meta_task.cc.o.d"
  "/root/repo/src/core/meta_trainer.cc" "src/CMakeFiles/lte_core.dir/core/meta_trainer.cc.o" "gcc" "src/CMakeFiles/lte_core.dir/core/meta_trainer.cc.o.d"
  "/root/repo/src/core/optimizer_fpfn.cc" "src/CMakeFiles/lte_core.dir/core/optimizer_fpfn.cc.o" "gcc" "src/CMakeFiles/lte_core.dir/core/optimizer_fpfn.cc.o.d"
  "/root/repo/src/core/query_synthesis.cc" "src/CMakeFiles/lte_core.dir/core/query_synthesis.cc.o" "gcc" "src/CMakeFiles/lte_core.dir/core/query_synthesis.cc.o.d"
  "/root/repo/src/core/uis_feature.cc" "src/CMakeFiles/lte_core.dir/core/uis_feature.cc.o" "gcc" "src/CMakeFiles/lte_core.dir/core/uis_feature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
