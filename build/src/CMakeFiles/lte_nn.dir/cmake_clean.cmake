file(REMOVE_RECURSE
  "CMakeFiles/lte_nn.dir/nn/activations.cc.o"
  "CMakeFiles/lte_nn.dir/nn/activations.cc.o.d"
  "CMakeFiles/lte_nn.dir/nn/linear.cc.o"
  "CMakeFiles/lte_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/lte_nn.dir/nn/loss.cc.o"
  "CMakeFiles/lte_nn.dir/nn/loss.cc.o.d"
  "CMakeFiles/lte_nn.dir/nn/matrix.cc.o"
  "CMakeFiles/lte_nn.dir/nn/matrix.cc.o.d"
  "CMakeFiles/lte_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/lte_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/lte_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/lte_nn.dir/nn/optimizer.cc.o.d"
  "liblte_nn.a"
  "liblte_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
