file(REMOVE_RECURSE
  "liblte_nn.a"
)
