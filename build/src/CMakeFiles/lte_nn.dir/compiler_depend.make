# Empty compiler generated dependencies file for lte_nn.
# This may be replaced when dependencies are built.
