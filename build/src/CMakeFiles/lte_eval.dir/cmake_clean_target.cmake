file(REMOVE_RECURSE
  "liblte_eval.a"
)
