file(REMOVE_RECURSE
  "CMakeFiles/lte_eval.dir/eval/convergence.cc.o"
  "CMakeFiles/lte_eval.dir/eval/convergence.cc.o.d"
  "CMakeFiles/lte_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/lte_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/lte_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/lte_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/lte_eval.dir/eval/oracle.cc.o"
  "CMakeFiles/lte_eval.dir/eval/oracle.cc.o.d"
  "CMakeFiles/lte_eval.dir/eval/report.cc.o"
  "CMakeFiles/lte_eval.dir/eval/report.cc.o.d"
  "CMakeFiles/lte_eval.dir/eval/uir_generator.cc.o"
  "CMakeFiles/lte_eval.dir/eval/uir_generator.cc.o.d"
  "liblte_eval.a"
  "liblte_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
