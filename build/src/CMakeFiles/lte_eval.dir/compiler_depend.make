# Empty compiler generated dependencies file for lte_eval.
# This may be replaced when dependencies are built.
