
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/active_learner.cc" "src/CMakeFiles/lte_baselines.dir/baselines/active_learner.cc.o" "gcc" "src/CMakeFiles/lte_baselines.dir/baselines/active_learner.cc.o.d"
  "/root/repo/src/baselines/aide.cc" "src/CMakeFiles/lte_baselines.dir/baselines/aide.cc.o" "gcc" "src/CMakeFiles/lte_baselines.dir/baselines/aide.cc.o.d"
  "/root/repo/src/baselines/dsm.cc" "src/CMakeFiles/lte_baselines.dir/baselines/dsm.cc.o" "gcc" "src/CMakeFiles/lte_baselines.dir/baselines/dsm.cc.o.d"
  "/root/repo/src/baselines/polytope.cc" "src/CMakeFiles/lte_baselines.dir/baselines/polytope.cc.o" "gcc" "src/CMakeFiles/lte_baselines.dir/baselines/polytope.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lte_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
