# Empty dependencies file for lte_baselines.
# This may be replaced when dependencies are built.
