file(REMOVE_RECURSE
  "CMakeFiles/lte_baselines.dir/baselines/active_learner.cc.o"
  "CMakeFiles/lte_baselines.dir/baselines/active_learner.cc.o.d"
  "CMakeFiles/lte_baselines.dir/baselines/aide.cc.o"
  "CMakeFiles/lte_baselines.dir/baselines/aide.cc.o.d"
  "CMakeFiles/lte_baselines.dir/baselines/dsm.cc.o"
  "CMakeFiles/lte_baselines.dir/baselines/dsm.cc.o.d"
  "CMakeFiles/lte_baselines.dir/baselines/polytope.cc.o"
  "CMakeFiles/lte_baselines.dir/baselines/polytope.cc.o.d"
  "liblte_baselines.a"
  "liblte_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
