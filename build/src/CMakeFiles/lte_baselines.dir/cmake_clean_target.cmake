file(REMOVE_RECURSE
  "liblte_baselines.a"
)
