file(REMOVE_RECURSE
  "liblte_cluster.a"
)
