# Empty compiler generated dependencies file for lte_cluster.
# This may be replaced when dependencies are built.
