file(REMOVE_RECURSE
  "CMakeFiles/lte_cluster.dir/cluster/drift.cc.o"
  "CMakeFiles/lte_cluster.dir/cluster/drift.cc.o.d"
  "CMakeFiles/lte_cluster.dir/cluster/kmeans.cc.o"
  "CMakeFiles/lte_cluster.dir/cluster/kmeans.cc.o.d"
  "CMakeFiles/lte_cluster.dir/cluster/proximity.cc.o"
  "CMakeFiles/lte_cluster.dir/cluster/proximity.cc.o.d"
  "liblte_cluster.a"
  "liblte_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
