
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/drift.cc" "src/CMakeFiles/lte_cluster.dir/cluster/drift.cc.o" "gcc" "src/CMakeFiles/lte_cluster.dir/cluster/drift.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/lte_cluster.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/lte_cluster.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/proximity.cc" "src/CMakeFiles/lte_cluster.dir/cluster/proximity.cc.o" "gcc" "src/CMakeFiles/lte_cluster.dir/cluster/proximity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
