# Empty compiler generated dependencies file for sdss_exploration.
# This may be replaced when dependencies are built.
