file(REMOVE_RECURSE
  "CMakeFiles/sdss_exploration.dir/sdss_exploration.cc.o"
  "CMakeFiles/sdss_exploration.dir/sdss_exploration.cc.o.d"
  "sdss_exploration"
  "sdss_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdss_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
