# Empty dependencies file for car_exploration.
# This may be replaced when dependencies are built.
