file(REMOVE_RECURSE
  "CMakeFiles/car_exploration.dir/car_exploration.cc.o"
  "CMakeFiles/car_exploration.dir/car_exploration.cc.o.d"
  "car_exploration"
  "car_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
