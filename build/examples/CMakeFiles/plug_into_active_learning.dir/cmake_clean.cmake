file(REMOVE_RECURSE
  "CMakeFiles/plug_into_active_learning.dir/plug_into_active_learning.cc.o"
  "CMakeFiles/plug_into_active_learning.dir/plug_into_active_learning.cc.o.d"
  "plug_into_active_learning"
  "plug_into_active_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plug_into_active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
