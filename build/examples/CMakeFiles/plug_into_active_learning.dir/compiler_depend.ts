# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for plug_into_active_learning.
