# Empty dependencies file for plug_into_active_learning.
# This may be replaced when dependencies are built.
