file(REMOVE_RECURSE
  "CMakeFiles/bench_label_noise.dir/bench_label_noise.cc.o"
  "CMakeFiles/bench_label_noise.dir/bench_label_noise.cc.o.d"
  "bench_label_noise"
  "bench_label_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
