file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_generalized.dir/bench_fig7_generalized.cc.o"
  "CMakeFiles/bench_fig7_generalized.dir/bench_fig7_generalized.cc.o.d"
  "bench_fig7_generalized"
  "bench_fig7_generalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_generalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
