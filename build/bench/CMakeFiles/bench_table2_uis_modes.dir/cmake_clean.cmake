file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_uis_modes.dir/bench_table2_uis_modes.cc.o"
  "CMakeFiles/bench_table2_uis_modes.dir/bench_table2_uis_modes.cc.o.d"
  "bench_table2_uis_modes"
  "bench_table2_uis_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_uis_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
