# Empty dependencies file for bench_table2_uis_modes.
# This may be replaced when dependencies are built.
