file(REMOVE_RECURSE
  "CMakeFiles/query_synthesis_test.dir/query_synthesis_test.cc.o"
  "CMakeFiles/query_synthesis_test.dir/query_synthesis_test.cc.o.d"
  "query_synthesis_test"
  "query_synthesis_test.pdb"
  "query_synthesis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
