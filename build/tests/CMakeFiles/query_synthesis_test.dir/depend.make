# Empty dependencies file for query_synthesis_test.
# This may be replaced when dependencies are built.
