file(REMOVE_RECURSE
  "CMakeFiles/smo_test.dir/smo_test.cc.o"
  "CMakeFiles/smo_test.dir/smo_test.cc.o.d"
  "smo_test"
  "smo_test.pdb"
  "smo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
