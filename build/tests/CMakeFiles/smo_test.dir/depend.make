# Empty dependencies file for smo_test.
# This may be replaced when dependencies are built.
