file(REMOVE_RECURSE
  "CMakeFiles/uis_feature_test.dir/uis_feature_test.cc.o"
  "CMakeFiles/uis_feature_test.dir/uis_feature_test.cc.o.d"
  "uis_feature_test"
  "uis_feature_test.pdb"
  "uis_feature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uis_feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
