# Empty dependencies file for uis_feature_test.
# This may be replaced when dependencies are built.
