# Empty dependencies file for activations_loss_test.
# This may be replaced when dependencies are built.
