file(REMOVE_RECURSE
  "CMakeFiles/activations_loss_test.dir/activations_loss_test.cc.o"
  "CMakeFiles/activations_loss_test.dir/activations_loss_test.cc.o.d"
  "activations_loss_test"
  "activations_loss_test.pdb"
  "activations_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activations_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
