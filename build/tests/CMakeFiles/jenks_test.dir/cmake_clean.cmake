file(REMOVE_RECURSE
  "CMakeFiles/jenks_test.dir/jenks_test.cc.o"
  "CMakeFiles/jenks_test.dir/jenks_test.cc.o.d"
  "jenks_test"
  "jenks_test.pdb"
  "jenks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jenks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
