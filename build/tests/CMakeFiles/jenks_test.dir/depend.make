# Empty dependencies file for jenks_test.
# This may be replaced when dependencies are built.
