# Empty dependencies file for tabular_encoder_test.
# This may be replaced when dependencies are built.
