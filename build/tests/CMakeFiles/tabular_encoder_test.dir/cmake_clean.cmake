file(REMOVE_RECURSE
  "CMakeFiles/tabular_encoder_test.dir/tabular_encoder_test.cc.o"
  "CMakeFiles/tabular_encoder_test.dir/tabular_encoder_test.cc.o.d"
  "tabular_encoder_test"
  "tabular_encoder_test.pdb"
  "tabular_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabular_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
