# Empty dependencies file for meta_learner_test.
# This may be replaced when dependencies are built.
