file(REMOVE_RECURSE
  "CMakeFiles/meta_learner_test.dir/meta_learner_test.cc.o"
  "CMakeFiles/meta_learner_test.dir/meta_learner_test.cc.o.d"
  "meta_learner_test"
  "meta_learner_test.pdb"
  "meta_learner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
