file(REMOVE_RECURSE
  "CMakeFiles/aide_test.dir/aide_test.cc.o"
  "CMakeFiles/aide_test.dir/aide_test.cc.o.d"
  "aide_test"
  "aide_test.pdb"
  "aide_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
