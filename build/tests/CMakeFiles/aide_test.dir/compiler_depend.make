# Empty compiler generated dependencies file for aide_test.
# This may be replaced when dependencies are built.
