file(REMOVE_RECURSE
  "CMakeFiles/model_robustness_test.dir/model_robustness_test.cc.o"
  "CMakeFiles/model_robustness_test.dir/model_robustness_test.cc.o.d"
  "model_robustness_test"
  "model_robustness_test.pdb"
  "model_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
