# Empty compiler generated dependencies file for model_robustness_test.
# This may be replaced when dependencies are built.
