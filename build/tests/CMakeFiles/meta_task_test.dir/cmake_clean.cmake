file(REMOVE_RECURSE
  "CMakeFiles/meta_task_test.dir/meta_task_test.cc.o"
  "CMakeFiles/meta_task_test.dir/meta_task_test.cc.o.d"
  "meta_task_test"
  "meta_task_test.pdb"
  "meta_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
