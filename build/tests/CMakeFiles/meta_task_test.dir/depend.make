# Empty dependencies file for meta_task_test.
# This may be replaced when dependencies are built.
