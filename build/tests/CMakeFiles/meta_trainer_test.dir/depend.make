# Empty dependencies file for meta_trainer_test.
# This may be replaced when dependencies are built.
