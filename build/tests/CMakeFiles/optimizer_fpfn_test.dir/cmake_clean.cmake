file(REMOVE_RECURSE
  "CMakeFiles/optimizer_fpfn_test.dir/optimizer_fpfn_test.cc.o"
  "CMakeFiles/optimizer_fpfn_test.dir/optimizer_fpfn_test.cc.o.d"
  "optimizer_fpfn_test"
  "optimizer_fpfn_test.pdb"
  "optimizer_fpfn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_fpfn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
