# Empty dependencies file for optimizer_fpfn_test.
# This may be replaced when dependencies are built.
