file(REMOVE_RECURSE
  "CMakeFiles/convex_hull_test.dir/convex_hull_test.cc.o"
  "CMakeFiles/convex_hull_test.dir/convex_hull_test.cc.o.d"
  "convex_hull_test"
  "convex_hull_test.pdb"
  "convex_hull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convex_hull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
