
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math_util_test.cc" "tests/CMakeFiles/math_util_test.dir/math_util_test.cc.o" "gcc" "tests/CMakeFiles/math_util_test.dir/math_util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lte_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
