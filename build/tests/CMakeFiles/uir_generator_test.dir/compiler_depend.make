# Empty compiler generated dependencies file for uir_generator_test.
# This may be replaced when dependencies are built.
