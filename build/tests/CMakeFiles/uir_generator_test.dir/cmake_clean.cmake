file(REMOVE_RECURSE
  "CMakeFiles/uir_generator_test.dir/uir_generator_test.cc.o"
  "CMakeFiles/uir_generator_test.dir/uir_generator_test.cc.o.d"
  "uir_generator_test"
  "uir_generator_test.pdb"
  "uir_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uir_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
