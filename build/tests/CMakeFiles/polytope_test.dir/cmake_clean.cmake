file(REMOVE_RECURSE
  "CMakeFiles/polytope_test.dir/polytope_test.cc.o"
  "CMakeFiles/polytope_test.dir/polytope_test.cc.o.d"
  "polytope_test"
  "polytope_test.pdb"
  "polytope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polytope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
