# Empty dependencies file for polytope_test.
# This may be replaced when dependencies are built.
